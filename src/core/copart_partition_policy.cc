#include "core/copart_partition_policy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace copart {

CoPartPartitionPolicy::CoPartPartitionPolicy(
    const ResourceManagerParams& params)
    : params_(params) {}

void CoPartPartitionPolicy::OnAppAdded() {
  apps_.push_back(AppState{.llc_fsm = LlcClassifierFsm(params_.classifier),
                           .mba_fsm = MbaClassifierFsm(params_.classifier)});
}

void CoPartPartitionPolicy::OnAppRemoved(size_t index) {
  apps_.erase(apps_.begin() + static_cast<ptrdiff_t>(index));
}

void CoPartPartitionPolicy::ObserveProbe(size_t app, ProbeKind kind,
                                         const ProbeSignal& signal) {
  AppState& state = apps_[app];
  switch (kind) {
    case ProbeKind::kFull:
      // The slowdown reference (IPS_full) lives in the driver; nothing to
      // classify from the full-resource probe itself.
      break;
    case ProbeKind::kFewWays: {
      const double degradation = 1.0 - signal.ips / signal.ips_full;
      if (degradation > params_.profile_degradation_threshold) {
        state.llc_initial = ResourceClass::kDemand;
      } else if (signal.llc_access_rate <
                     params_.classifier.llc_access_rate_floor ||
                 signal.llc_miss_ratio <
                     params_.classifier.llc_miss_ratio_low) {
        state.llc_initial = ResourceClass::kSupply;
      } else {
        state.llc_initial = ResourceClass::kMaintain;
      }
      break;
    }
    case ProbeKind::kLowMba: {
      const double degradation = 1.0 - signal.ips / signal.ips_full;
      const double traffic_ratio =
          signal.llc_misses_per_sec / signal.stream_miss_rate_ref;
      if (degradation > params_.profile_degradation_threshold) {
        state.mba_initial = ResourceClass::kDemand;
      } else if (traffic_ratio < params_.classifier.traffic_ratio_low) {
        state.mba_initial = ResourceClass::kSupply;
      } else {
        state.mba_initial = ResourceClass::kMaintain;
      }
      break;
    }
  }
}

void CoPartPartitionPolicy::ObserveProbeSkipped(size_t app) {
  // Quarantined mid-profile: no trustworthy probes, conservative defaults.
  apps_[app].llc_initial = ResourceClass::kMaintain;
  apps_[app].mba_initial = ResourceClass::kMaintain;
}

PartitionDecision CoPartPartitionPolicy::StartExploration(
    const ResourcePool& pool, size_t num_apps) {
  CHECK_EQ(num_apps, apps_.size());
  retry_count_ = 0;
  for (AppState& app : apps_) {
    app.llc_fsm.Reset(app.llc_initial);
    app.mba_fsm.Reset(app.mba_initial);
  }
  llc_events_.assign(apps_.size(), ResourceEvent::kNone);
  mba_events_.assign(apps_.size(), ResourceEvent::kNone);
  infos_.assign(apps_.size(), MatchAppInfo{});
  return FairShare(pool, num_apps);
}

PartitionDecision CoPartPartitionPolicy::FairShare(const ResourcePool& pool,
                                                   size_t num_apps) const {
  // Exploration starts from equal ways. When MBA partitioning is dynamic the
  // levels start at the pool ceiling (the hardware reset state): Supply apps
  // are throttled *down* from there, and a level-up for a consumer is paired
  // with a level-down at a producer — matching the paper's
  // producer/consumer formulation. When MBA moves are disabled (the
  // CAT-only baseline's "equal memory bandwidth partitioning"), the levels
  // are frozen at the equal static share instead.
  if (params_.enable_mba_partitioning) {
    return MakePerAppDecision(SystemState::EqualShare(pool, num_apps));
  }
  return MakePerAppDecision(SystemState::EqualShareThrottled(pool, num_apps));
}

void CoPartPartitionPolicy::Classify(
    const std::vector<PolicySignals>& signals) {
  CHECK_EQ(signals.size(), apps_.size());
  infos_.resize(apps_.size());
  for (size_t i = 0; i < apps_.size(); ++i) {
    AppState& app = apps_[i];
    const PolicySignals& s = signals[i];
    if (s.healthy) {
      ClassifierInput llc_input{
          .llc_access_rate = s.llc_access_rate,
          .llc_miss_ratio = s.llc_miss_ratio,
          .traffic_ratio = 0.0,
          .perf_delta = s.perf_delta,
          .last_event = llc_events_[i],
      };
      app.llc_fsm.Update(llc_input);

      ClassifierInput mba_input = llc_input;
      mba_input.traffic_ratio = s.traffic_ratio;
      mba_input.last_event = mba_events_[i];
      app.mba_fsm.Update(mba_input);
    }
    // Unhealthy: keep the FSM states from the last trusted period — garbage
    // must not drive classification.
    if (s.quarantined) {
      // Conservative citizen: no measured slowdown, no resource pressure.
      infos_[i] = MatchAppInfo{
          .slowdown = 1.0,
          .llc_class = ResourceClass::kMaintain,
          .mba_class = ResourceClass::kMaintain,
      };
    } else {
      infos_[i] = MatchAppInfo{
          .slowdown = s.slowdown,
          .llc_class = app.llc_fsm.state(),
          .mba_class = app.mba_fsm.state(),
      };
    }
  }
}

PartitionDecision CoPartPartitionPolicy::Allocate(
    const SystemState& current, const std::vector<PolicySignals>& signals,
    Rng& rng) {
  (void)signals;  // Consumed by Classify; infos_ carries what the matcher
                  // needs.
  MatchResult match =
      params_.matcher
          ? params_.matcher(current, infos_, rng,
                            params_.enable_llc_partitioning,
                            params_.enable_mba_partitioning)
          : GetNextSystemState(current, infos_, rng,
                               params_.enable_llc_partitioning,
                               params_.enable_mba_partitioning);

  SystemState next = match.next_state;
  bool used_neighbor = false;
  if (next == current) {
    if (retry_count_ < params_.theta) {
      next = current.RandomNeighbor(rng, params_.enable_llc_partitioning,
                                    params_.enable_mba_partitioning);
      used_neighbor = true;
      ++retry_count_;
    } else {
      PartitionDecision decision = MakePerAppDecision(current);
      decision.converged = true;
      decision.retries = retry_count_;
      return decision;
    }
  }

  // Derive per-app resource events from the state diff; they feed the FSMs
  // next period.
  for (size_t i = 0; i < apps_.size(); ++i) {
    const AppAllocation& before = current.allocation(i);
    const AppAllocation& after = next.allocation(i);
    if (after.llc_ways > before.llc_ways) {
      llc_events_[i] = ResourceEvent::kGainedLlcWay;
    } else if (after.llc_ways < before.llc_ways) {
      llc_events_[i] = ResourceEvent::kLostLlcWay;
    } else {
      llc_events_[i] = ResourceEvent::kNone;
    }
    if (after.mba_level > before.mba_level) {
      mba_events_[i] = ResourceEvent::kGainedMba;
    } else if (after.mba_level < before.mba_level) {
      mba_events_[i] = ResourceEvent::kLostMba;
    } else if (llc_events_[i] == ResourceEvent::kGainedLlcWay) {
      // The MBA FSM's Demand state treats "gained an LLC way with little
      // benefit" specially (§5.3).
      mba_events_[i] = ResourceEvent::kGainedLlcWay;
    } else {
      mba_events_[i] = ResourceEvent::kNone;
    }
  }

  PartitionDecision decision = MakePerAppDecision(std::move(next));
  decision.used_neighbor = used_neighbor;
  decision.retries = retry_count_;
  decision.llc_classes.reserve(infos_.size());
  decision.mba_classes.reserve(infos_.size());
  for (const MatchAppInfo& info : infos_) {
    decision.llc_classes.push_back(info.llc_class);
    decision.mba_classes.push_back(info.mba_class);
  }
  return decision;
}

ResourceClass CoPartPartitionPolicy::LlcClassOf(size_t app) const {
  return apps_[app].llc_fsm.state();
}

ResourceClass CoPartPartitionPolicy::MbaClassOf(size_t app) const {
  return apps_[app].mba_fsm.state();
}

}  // namespace copart
