// dCat-style dynamic cache partitioning baseline.
//
// The paper's closest related work ([45], Xu et al., EuroSys'18 "dCat")
// dynamically resizes LLC partitions from lightweight online feedback,
// without miss-curve models: each period, classify every app by how its
// performance responded to its last size change and grow the apps that
// benefit from cache at the expense of those that do not. This
// implementation distills that feedback loop:
//
//   - Every app keeps a per-way marginal benefit estimate, updated from
//     the measured IPS delta whenever its allocation changed.
//   - Each period, the app with the highest positive estimated benefit
//     takes one way from the app with the lowest estimate (if the transfer
//     is feasible), with estimates decayed so stale observations fade.
//   - Memory bandwidth is NOT managed (like dCat and the paper's CAT-only
//     class): MBA stays at the equal static share.
//
// It optimizes throughput via local feedback, giving the comparison a
// dynamic LLC-only baseline with a genuinely different algorithm from
// CoPart's classifier + matching approach (CAT-only shares CoPart's
// machinery; dCat does not).
#ifndef COPART_CORE_DCAT_POLICY_H_
#define COPART_CORE_DCAT_POLICY_H_

#include <vector>

#include "core/policies.h"
#include "core/system_state.h"
#include "machine/app_id.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"

namespace copart {

class DcatPolicy : public ConsolidationPolicy {
 public:
  DcatPolicy(Resctrl* resctrl, PerfMonitor* monitor, std::vector<AppId> apps,
             ResourcePool pool);

  std::string name() const override { return "dCat"; }
  void Start() override;
  void Tick() override;

  const SystemState& current_state() const { return state_; }

 private:
  struct AppState {
    AppId id;
    ResctrlGroupId group;
    double prev_ips = 0.0;
    // Smoothed estimate of the relative IPS change per way gained.
    double benefit_estimate = 0.0;
    int last_delta_ways = 0;  // Allocation change applied last period.
  };

  void Apply();

  Resctrl* resctrl_;      // Not owned.
  PerfMonitor* monitor_;  // Not owned.
  ResourcePool pool_;
  std::vector<AppState> apps_;
  SystemState state_;
  uint64_t tick_ = 0;

  // Exponential smoothing for the benefit estimates and the minimum
  // estimated benefit that justifies a transfer.
  static constexpr double kSmoothing = 0.5;
  static constexpr double kMinBenefit = 0.01;
};

}  // namespace copart

#endif  // COPART_CORE_DCAT_POLICY_H_
