// Pluggable classification/allocation policies for the resource manager.
//
// ResourceManager (core/resource_manager.h) is the *driver*: it owns the
// shared substrate — fallible PMC sampling with quarantine, profiling probe
// scheduling, transactional actuation with retry/backoff/degraded mode, the
// unfairness-trend governor, SLO slices and all telemetry. A PartitionPolicy
// owns the *decisions*: how sampled signals classify apps and which partition
// the machine should run next. CoPart's per-app classifier-FSMs + HR matching
// is one implementation (core/copart_partition_policy.h); the LFOC/LFOC+
// clustering rivals and the CBP prefetch coordinator are others
// (core/lfoc_policy.h, core/cbp_policy.h).
//
// Slot shapes. A decision's SystemState is *slot*-shaped: per-app policies
// emit one slot per app (slot i == app i, the classic CoPart layout), while
// clustering policies emit one slot per shared CLOS and map every app to a
// slot through PartitionDecision::app_slot. The driver actuates slots onto
// resctrl groups — per-app groups for per_app_groups() policies, lazily
// created "copart_cluster_<k>" groups otherwise — and binds apps to their
// slot's group as part of the same transaction.
#ifndef COPART_CORE_PARTITION_POLICY_H_
#define COPART_CORE_PARTITION_POLICY_H_

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/classifiers.h"
#include "core/copart_params.h"
#include "core/system_state.h"

namespace copart {

// Per-app signal bundle the driver assembles from one control period's PMC
// samples. `healthy` mirrors the quarantine substrate's verdict on this
// period's sample; when false, every derived field except `slowdown` and
// `quarantined` is stale and must not drive classification.
struct PolicySignals {
  bool healthy = false;
  bool quarantined = false;
  double ips = 0.0;
  // Relative IPS change vs. the previous trusted period (deltaP input).
  double perf_delta = 0.0;
  double llc_access_rate = 0.0;
  double llc_miss_ratio = 0.0;
  // LLC miss rate over the STREAM reference at the app's current MBA level.
  double traffic_ratio = 0.0;
  // Online slowdown estimate (ips_full / ips, >= 1); 1.0 when unknown or
  // quarantined. Only meaningful for policies that run profiling probes.
  double slowdown = 1.0;
};

// Profiling probe kinds, mirroring the driver's §5.4.1 schedule.
enum class ProbeKind { kFull = 0, kFewWays = 1, kLowMba = 2 };

// Measurements of one healthy probe period for one app.
struct ProbeSignal {
  double ips = 0.0;
  double ips_full = 0.0;  // Recorded by the kFull probe (>= 1).
  double llc_access_rate = 0.0;
  double llc_miss_ratio = 0.0;
  double llc_misses_per_sec = 0.0;
  // STREAM miss-rate reference at the probe's MBA level (traffic-ratio
  // denominator).
  double stream_miss_rate_ref = 0.0;
};

// One allocation decision. `state` holds one AppAllocation per *slot*;
// `app_slot[i]` names the slot app i runs in (identity for per-app
// policies). `prefetch_percent` is the optional third actuator: empty
// leaves every app's prefetcher untouched, otherwise one 0..100 (step 10)
// value per app.
struct PartitionDecision {
  SystemState state;
  std::vector<uint32_t> app_slot;
  std::vector<uint32_t> prefetch_percent;
  // Telemetry: the per-app classes the decision was derived from.
  std::vector<ResourceClass> llc_classes;
  std::vector<ResourceClass> mba_classes;
  // Exploration bookkeeping (per-app CoPart): true ends exploration (the
  // driver parks in idle); used_neighbor/retries feed trace + audit.
  bool converged = false;
  bool used_neighbor = false;
  int retries = 0;
};

// Builds the identity-mapped (per-app) decision for `state`.
inline PartitionDecision MakePerAppDecision(SystemState state) {
  PartitionDecision decision;
  decision.app_slot.resize(state.NumApps());
  std::iota(decision.app_slot.begin(), decision.app_slot.end(), 0u);
  decision.state = std::move(state);
  return decision;
}

class PartitionPolicy {
 public:
  virtual ~PartitionPolicy() = default;

  virtual std::string name() const = 0;

  // True: the driver creates one resctrl group per app (and admission is
  // bounded by one way per app). False: the driver materializes shared
  // cluster groups on demand and binds apps per decision.
  virtual bool per_app_groups() const = 0;

  // True: the driver runs the three-probe profiling phase and feeds
  // ObserveProbe before exploration starts.
  virtual bool needs_profiling() const = 0;

  // True: on convergence the driver restores the fairest state observed
  // during exploration (only meaningful with profiled slowdowns).
  virtual bool restore_best_state() const = 0;

  // --- App lifetime (indices track the driver's apps_ vector) ---
  virtual void OnAppAdded() = 0;
  virtual void OnAppRemoved(size_t index) = 0;

  // --- Profiling (only called when needs_profiling()) ---
  virtual void ObserveProbe(size_t /*app*/, ProbeKind /*kind*/,
                            const ProbeSignal& /*signal*/) {}
  // The app was quarantined mid-profile; adopt conservative defaults.
  virtual void ObserveProbeSkipped(size_t /*app*/) {}

  // Resets exploration state and returns the opening decision. The driver
  // actuates it and starts feeding Classify/Allocate each period.
  virtual PartitionDecision StartExploration(const ResourcePool& pool,
                                             size_t num_apps) = 0;

  // The safest static decision for the pool — what the degraded phase pins
  // and what profiling/adaptation starts from. Must not consume RNG.
  virtual PartitionDecision FairShare(const ResourcePool& pool,
                                      size_t num_apps) const = 0;

  // Feeds one period's signals (index-parallel with the driver's apps_).
  virtual void Classify(const std::vector<PolicySignals>& signals) = 0;

  // Produces the next decision given the currently actuated state. May
  // consume `rng` (the draw order is part of the deterministic surface).
  virtual PartitionDecision Allocate(const SystemState& current,
                                     const std::vector<PolicySignals>& signals,
                                     Rng& rng) = 0;

  // Latest per-app classes for telemetry and the public LlcClass/MbaClass
  // accessors (what the allocator saw or will see this period).
  virtual ResourceClass LlcClassOf(size_t app) const = 0;
  virtual ResourceClass MbaClassOf(size_t app) const = 0;
};

// Factory: builds the policy named by `name` ("copart", "lfoc", "lfoc+",
// "cbp"); CHECK-fails on an unknown name.
std::unique_ptr<PartitionPolicy> MakePartitionPolicy(
    const std::string& name, const ResourceManagerParams& params);

// Every registered policy name, in registration order — the conformance
// suite parameterizes over this.
const std::vector<std::string>& RegisteredPartitionPolicyNames();

}  // namespace copart

#endif  // COPART_CORE_PARTITION_POLICY_H_
