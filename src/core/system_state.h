// Resource allocation state (paper §2.3).
//
// The resource allocation state s_i of application i is (l_i, m_i): the
// number of LLC ways and the MBA level allocated to it. The system state S
// is the vector of all s_i. CoPart explores system states drawn from a
// ResourcePool — the contiguous region of ways and the MBA ceiling that an
// outer server manager has granted to the consolidated (batch) apps; for
// whole-machine experiments the pool is simply all ways and MBA 100.
#ifndef COPART_CORE_SYSTEM_STATE_H_
#define COPART_CORE_SYSTEM_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "membw/mba.h"

namespace copart {

// The slice of machine resources the controller may hand out.
struct ResourcePool {
  uint32_t first_way = 0;
  uint32_t num_ways = 11;
  uint32_t max_mba_percent = 100;

  bool operator==(const ResourcePool& other) const = default;
};

// Per-app allocation (s_i).
struct AppAllocation {
  uint32_t llc_ways = 1;
  MbaLevel mba_level;

  bool operator==(const AppAllocation& other) const = default;
};

class SystemState {
 public:
  SystemState() = default;
  SystemState(ResourcePool pool, std::vector<AppAllocation> allocations);

  // Equal split: ways divided as evenly as possible (earlier apps take the
  // remainder), every app at the pool's MBA ceiling. CHECK-fails when there
  // are more apps than ways.
  static SystemState EqualShare(const ResourcePool& pool, size_t num_apps);

  // Equal ways, MBA level ~= ceiling/num_apps rounded to the platform step
  // (the EQ baseline's "equal memory bandwidth" interpretation).
  static SystemState EqualShareThrottled(const ResourcePool& pool,
                                         size_t num_apps);

  size_t NumApps() const { return allocations_.size(); }
  const ResourcePool& pool() const { return pool_; }
  const AppAllocation& allocation(size_t app) const;
  AppAllocation& allocation(size_t app);
  const std::vector<AppAllocation>& allocations() const {
    return allocations_;
  }

  // Invariants: every app has >= 1 way, way total == pool size, MBA levels
  // within [10, pool ceiling].
  bool Valid() const;

  // Uniformly random single-step perturbation (Algorithm 1's
  // getNeighborState): move one way between two random apps, or step one
  // random app's MBA level. Returns a valid state differing in one move;
  // returns *this unchanged if no move is possible.
  SystemState RandomNeighbor(Rng& rng, bool allow_llc_moves,
                             bool allow_mba_moves) const;

  // Contiguous way mask bits for app `i`, packing apps left to right in
  // index order within the pool.
  uint64_t WayMaskBits(size_t app) const;

  std::string ToString() const;

  bool operator==(const SystemState& other) const = default;

 private:
  ResourcePool pool_;
  std::vector<AppAllocation> allocations_;
};

}  // namespace copart

#endif  // COPART_CORE_SYSTEM_STATE_H_
