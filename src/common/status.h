// Exception-free error handling: Status carries an error code + message;
// Result<T> is a value-or-Status union used by fallible library calls
// (resctrl schemata validation, workload registry lookups, ...).
#ifndef COPART_COMMON_STATUS_H_
#define COPART_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace copart {

enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
  // A transiently failing dependency (e.g. an injected -EBUSY from the
  // resctrl surface); retrying with backoff may succeed.
  kUnavailable = 9,
};

// Human-readable name for a status code ("kOk", "kInvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// [[nodiscard]]: silently dropping a Status hides actuation failures the
// hardened controller is built to survive; callers must consume it (assign,
// test, or explicitly void-cast with a comment).
class [[nodiscard]] Status {
 public:
  // Default constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "kInvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

// Value-or-error. Accessing value() on an error Result is a fatal CHECK;
// callers must test ok() (or use value_or) on fallible paths.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit conversions make `return value;` / `return SomeError(...);`
  // read naturally at call sites, mirroring absl::StatusOr.
  Result(T value) : data_(std::move(value)) {}          // NOLINT
  Result(Status status) : data_(std::move(status)) {    // NOLINT
    CHECK(!std::get<Status>(data_).ok())
        << "Result<T> constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace copart

// Propagates an error Status from a fallible expression, mirroring
// absl's RETURN_IF_ERROR.
#define RETURN_IF_ERROR(expr)                  \
  do {                                         \
    ::copart::Status status_ = (expr);         \
    if (!status_.ok()) {                       \
      return status_;                          \
    }                                          \
  } while (0)

#endif  // COPART_COMMON_STATUS_H_
