#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace copart {
namespace {

std::atomic<int32_t> g_min_severity{static_cast<int32_t>(LogSeverity::kInfo)};

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int32_t>(severity), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", SeverityName(severity_),
                 Basename(file_), line_, stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace copart
