// Small statistics helpers used by the metrics module, the experiment
// harness, and the latency model: mean / stddev / geometric mean, a running
// accumulator, and a fixed-capacity percentile reservoir.
#ifndef COPART_COMMON_STATS_H_
#define COPART_COMMON_STATS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace copart {

// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> values);

// Population standard deviation; 0 for spans of size < 2.
double StdDev(std::span<const double> values);

// Geometric mean; requires all values > 0; 0 for an empty span.
double GeoMean(std::span<const double> values);

// Linear-interpolated percentile, p in [0, 100]. Copies + sorts internally;
// 0 for an empty span.
double Percentile(std::span<const double> values, double p);

// Streaming mean/variance (Welford). Used for per-epoch counter summaries
// where storing every sample would be wasteful.
class RunningStats {
 public:
  void Add(double value);
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance / standard deviation.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace copart

#endif  // COPART_COMMON_STATS_H_
