#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace copart {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  while (true) {
    const uint64_t value = NextUint64();
    if (value >= threshold) {
      return value % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  CHECK_GT(mean, 0.0);
  double u = NextDouble();
  // Guard log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::Fork() { return Rng(NextUint64()); }

Rng Rng::Fork(uint64_t stream) const {
  // Pinned derivation (known-answer tested): chain the four state words and
  // the stream index through SplitMix64. Distinct streams land in distinct
  // SplitMix64 trajectories, so child generators are pairwise independent
  // and unrelated to the parent's own continuation.
  uint64_t h = 0x9E3779B97F4A7C15ULL ^ stream;
  for (uint64_t word : state_) {
    h ^= word;
    h = SplitMix64(h);
  }
  h ^= stream;
  return Rng(SplitMix64(h));
}

}  // namespace copart
