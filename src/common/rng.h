// Deterministic pseudo-random number generation.
//
// Every stochastic component in the simulator (trace generators, CoPart's
// neighbor-state perturbation, the ANY-resource tie break in the HR matcher)
// draws from an explicitly seeded Rng so that experiments replay bit-for-bit.
#ifndef COPART_COMMON_RNG_H_
#define COPART_COMMON_RNG_H_

#include <cstdint>

namespace copart {

// SplitMix64-seeded xoshiro256** generator. Small, fast, and good enough for
// workload synthesis; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 2^64).
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Bernoulli draw with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponentially distributed draw with the given mean (> 0).
  double NextExponential(double mean);

  // Standard normal draw (Box-Muller).
  double NextGaussian();

  // Derives an independent child generator; used to give each workload its
  // own stream so adding an app does not shift the draws of the others.
  // Advances this generator by one draw.
  Rng Fork();

  // Derives the `stream`-th child generator WITHOUT advancing this one.
  // The parallel sweep engine seeds every sweep cell with Fork(cell_index)
  // so results are identical for any thread count and execution order.
  // The derivation is a pinned algorithm (SplitMix64 folds of the state
  // words and the stream index — see rng.cc); its outputs are covered by
  // known-answer tests and must never change, or golden experiment results
  // shift.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t state_[4];
};

}  // namespace copart

#endif  // COPART_COMMON_RNG_H_
