#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace copart {

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sq = 0.0;
  for (double v : values) {
    sq += (v - mean) * (v - mean);
  }
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double GeoMean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double v : values) {
    CHECK_GT(v, 0.0) << "GeoMean requires positive values";
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace copart
