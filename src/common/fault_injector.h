// Deterministic fault injection for the actuation/monitoring substrate.
//
// Production consolidation daemons must survive a control surface that
// misbehaves: /sys/fs/resctrl writes can return transient -EBUSY, CLOS
// allocation can exhaust, schemata writes can partially apply, and PMC
// reads can drop or saturate. The simulator reproduces those conditions
// through a FaultInjector: components expose *named fault points* (e.g.
// "resctrl.set_l3.unavailable", see resctrl/resctrl.h and
// pmc/perf_monitor.h) and consult the injector before/while mutating
// state. Tests and the chaos harness (harness/chaos.h) arm points with a
// FaultSpec; everything else runs with the injector disabled.
//
// Determinism contract (mirrors the parallel sweep engine's):
//   - Every fault point draws from its own generator, derived as
//     Rng(seed).Fork(Fnv1a64(point_name)). The derivation depends only on
//     the injector seed and the point name — NOT on arming order or on
//     queries made to other points — so a schedule replays bit-for-bit
//     from its seed alone (tests/common_fault_injector_test.cc,
//     harness_determinism_test.cc).
//   - Each ShouldFail() consumes exactly one draw from the point's stream
//     regardless of the outcome, keeping the schedule aligned with the
//     query index even across burst windows.
//
// Cost contract: the injector is compiled in everywhere but *free when
// absent*. Instrumented components hold a `FaultInjector*` that is null by
// default (MachineConfig::fault_injector), so the hot path pays one null
// compare. With an injector attached but no points armed, ShouldFail()
// returns after one counter bump and an empty-map check. The perf smoke
// gate (tools/run_perf_smoke.sh) runs bench_sim_throughput with an
// attached-but-disarmed injector to pin this.
#ifndef COPART_COMMON_FAULT_INJECTOR_H_
#define COPART_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace copart {

// Node-level fault domains for the fleet layer (src/cluster/fleet.h).
// Declared here — not in a component header like the resctrl/PMC points —
// because they model whole-machine failures that no single simulated
// component owns. The fleet controller queries each point once per node per
// epoch, in node-index order, on the serial control thread, so a schedule
// replays bit-for-bit from the injector seed at any --threads value.
namespace fault_points {
// The node dies: every resident job is lost, and the node reboots empty
// after FleetParams::crash_recovery_epochs.
inline constexpr std::string_view kNodeCrash = "fleet.node.crash";
// The node degrades (thermal throttling, a sick disk, a noisy neighbor
// hypervisor): its machine advances at FleetParams::slow_factor of real
// time for a fault window, so resident jobs fall behind.
inline constexpr std::string_view kNodeSlow = "fleet.node.slow";
// Actuation blackout: the node's CoPart controller cannot act (resctrl
// wedged, control daemon hung) for a fault window; the machine keeps
// running under the last applied partitioning.
inline constexpr std::string_view kNodeBlackout = "fleet.node.blackout";
}  // namespace fault_points

// How an armed fault point misbehaves. All three mechanisms compose: a
// query fails if it is inside a burst, listed as a one-shot, or loses the
// per-query Bernoulli draw — subject to the max_failures budget.
struct FaultSpec {
  // Per-query failure probability (clamped to [0, 1]).
  double probability = 0.0;

  // When a Bernoulli draw triggers, this many *consecutive* queries fail
  // (the triggering one included) — models sustained -EBUSY windows rather
  // than isolated blips. 1 = independent failures.
  uint32_t burst_length = 1;

  // Query indices (0-based, counted per point since arming) that fail
  // deterministically, independent of the probability draw. Lets a test
  // script an exact schedule ("the 3rd write fails").
  std::vector<uint64_t> one_shot_queries;

  // Total failures this point may produce before going quiescent;
  // UINT64_MAX = unlimited.
  uint64_t max_failures = UINT64_MAX;
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0);

  // Arms (or re-arms, resetting query/failure counts and the stream) the
  // named point.
  void Arm(std::string_view point, const FaultSpec& spec);

  // Disarms one point / all points. Disarmed points never fail.
  void Disarm(std::string_view point);
  void DisarmAll();

  // True when at least one point is armed.
  bool armed() const { return !points_.empty(); }

  // Consults (and advances) the named point. Unarmed points count the
  // query and return false.
  bool ShouldFail(std::string_view point);

  // Observability: queries/failures seen by one point since arming, and
  // totals across all points (armed or not).
  uint64_t PointQueries(std::string_view point) const;
  uint64_t PointFailures(std::string_view point) const;
  // Every point with recorded state (armed now or queried since arming),
  // sorted by name so exports iterate deterministically.
  std::vector<std::string> PointNames() const;
  uint64_t total_queries() const { return total_queries_; }
  uint64_t total_failures() const { return total_failures_; }

  // The pinned point-name hash (FNV-1a 64-bit) used to derive per-point
  // streams. Exposed for tests; must never change or armed schedules shift.
  static uint64_t HashPoint(std::string_view point);

 private:
  struct PointState {
    FaultSpec spec;
    Rng rng{0};
    uint64_t queries = 0;
    uint64_t failures = 0;
    uint32_t burst_remaining = 0;
  };

  uint64_t seed_;
  uint64_t total_queries_ = 0;
  uint64_t total_failures_ = 0;
  std::unordered_map<std::string, PointState> points_;
};

}  // namespace copart

#endif  // COPART_COMMON_FAULT_INJECTOR_H_
