#include "common/json_writer.h"

#include "common/logging.h"

namespace copart {

JsonWriter::JsonWriter(std::FILE* out) : out_(out) { CHECK(out != nullptr); }

void JsonWriter::Indent() {
  for (size_t i = 0; i < stack_.size(); ++i) {
    std::fputs("  ", out_);
  }
}

void JsonWriter::BeginItem(const char* key) {
  if (!stack_.empty()) {
    const bool inline_frame = stack_.back() == Frame::kInline;
    if (counts_.back() > 0) {
      std::fputs(inline_frame ? ", " : ",\n", out_);
    } else if (!inline_frame) {
      std::fputc('\n', out_);
    }
    ++counts_.back();
    if (!inline_frame) {
      Indent();
    }
  }
  if (key != nullptr) {
    std::fprintf(out_, "\"%s\": ", key);
  }
}

void JsonWriter::BeginObject() { BeginObject(nullptr); }

void JsonWriter::BeginObject(const char* key) {
  BeginItem(key);
  std::fputc('{', out_);
  stack_.push_back(Frame::kObject);
  counts_.push_back(0);
}

void JsonWriter::EndObject() {
  CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    std::fputc('\n', out_);
    Indent();
  }
  std::fputc('}', out_);
}

void JsonWriter::BeginArray(const char* key) {
  BeginItem(key);
  std::fputc('[', out_);
  stack_.push_back(Frame::kArray);
  counts_.push_back(0);
}

void JsonWriter::EndArray() {
  CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    std::fputc('\n', out_);
    Indent();
  }
  std::fputc(']', out_);
}

void JsonWriter::BeginInlineObject() { BeginInlineObject(nullptr); }

void JsonWriter::BeginInlineObject(const char* key) {
  BeginItem(key);
  std::fputc('{', out_);
  stack_.push_back(Frame::kInline);
  counts_.push_back(0);
}

void JsonWriter::EndInlineObject() {
  CHECK(!stack_.empty() && stack_.back() == Frame::kInline);
  stack_.pop_back();
  counts_.pop_back();
  std::fputc('}', out_);
}

void JsonWriter::String(const char* key, const std::string& value) {
  BeginItem(key);
  std::fputc('"', out_);
  for (const char c : value) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', out_);
    }
    std::fputc(c, out_);
  }
  std::fputc('"', out_);
}

void JsonWriter::Uint(const char* key, uint64_t value) {
  BeginItem(key);
  std::fprintf(out_, "%llu", static_cast<unsigned long long>(value));
}

void JsonWriter::Double(const char* key, double value, int decimals) {
  BeginItem(key);
  std::fprintf(out_, "%.*f", decimals, value);
}

void JsonWriter::EndDocument() {
  CHECK_EQ(stack_.size(), 1u);
  EndObject();
  std::fputc('\n', out_);
}

}  // namespace copart
