#include "common/fault_injector.h"

#include <algorithm>

namespace copart {

FaultInjector::FaultInjector(uint64_t seed) : seed_(seed) {}

uint64_t FaultInjector::HashPoint(std::string_view point) {
  // FNV-1a 64-bit. Pinned: per-point streams are Rng(seed).Fork(hash), so
  // changing this constant set would shift every armed schedule.
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : point) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void FaultInjector::Arm(std::string_view point, const FaultSpec& spec) {
  PointState state;
  state.spec = spec;
  state.spec.probability = std::clamp(spec.probability, 0.0, 1.0);
  state.spec.burst_length = std::max(spec.burst_length, 1u);
  state.rng = Rng(seed_).Fork(HashPoint(point));
  points_.insert_or_assign(std::string(point), std::move(state));
}

void FaultInjector::Disarm(std::string_view point) {
  auto it = points_.find(std::string(point));
  if (it != points_.end()) {
    points_.erase(it);
  }
}

void FaultInjector::DisarmAll() { points_.clear(); }

bool FaultInjector::ShouldFail(std::string_view point) {
  ++total_queries_;
  if (points_.empty()) {
    return false;
  }
  auto it = points_.find(std::string(point));
  if (it == points_.end()) {
    return false;
  }
  PointState& state = it->second;
  const uint64_t query = state.queries++;
  // One draw per query, outcome-independent, keeps the stream aligned with
  // the query index (see the determinism contract in the header).
  const bool bernoulli = state.rng.NextDouble() < state.spec.probability;

  bool fail = false;
  if (state.burst_remaining > 0) {
    --state.burst_remaining;
    fail = true;
  } else if (std::find(state.spec.one_shot_queries.begin(),
                       state.spec.one_shot_queries.end(),
                       query) != state.spec.one_shot_queries.end()) {
    fail = true;
  } else if (bernoulli) {
    fail = true;
    state.burst_remaining = state.spec.burst_length - 1;
  }
  if (fail && state.failures >= state.spec.max_failures) {
    fail = false;
    state.burst_remaining = 0;
  }
  if (fail) {
    ++state.failures;
    ++total_failures_;
  }
  return fail;
}

uint64_t FaultInjector::PointQueries(std::string_view point) const {
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.queries;
}

uint64_t FaultInjector::PointFailures(std::string_view point) const {
  auto it = points_.find(std::string(point));
  return it == points_.end() ? 0 : it->second.failures;
}

std::vector<std::string> FaultInjector::PointNames() const {
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, state] : points_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace copart
