// Unit helpers shared across the simulator: byte quantities, bandwidth, and
// simulated-time constants. Kept as plain constexpr functions/constants so the
// call sites (cache geometry, bandwidth arbitration) stay arithmetic-friendly.
#ifndef COPART_COMMON_UNITS_H_
#define COPART_COMMON_UNITS_H_

#include <cstdint>

namespace copart {

constexpr uint64_t KiB(uint64_t n) { return n * 1024ULL; }
constexpr uint64_t MiB(uint64_t n) { return n * 1024ULL * 1024ULL; }
constexpr uint64_t GiB(uint64_t n) { return n * 1024ULL * 1024ULL * 1024ULL; }

// Bandwidths are carried as bytes/second (double); GBps is decimal GB as in
// vendor datasheets (the paper's "~28GB/s").
constexpr double GBps(double n) { return n * 1e9; }

// Simulated time is carried as double seconds.
constexpr double Milliseconds(double n) { return n * 1e-3; }
constexpr double Microseconds(double n) { return n * 1e-6; }

}  // namespace copart

#endif  // COPART_COMMON_UNITS_H_
