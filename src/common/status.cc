#include "common/status.h"

namespace copart {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "kOk";
    case StatusCode::kInvalidArgument:
      return "kInvalidArgument";
    case StatusCode::kNotFound:
      return "kNotFound";
    case StatusCode::kAlreadyExists:
      return "kAlreadyExists";
    case StatusCode::kOutOfRange:
      return "kOutOfRange";
    case StatusCode::kFailedPrecondition:
      return "kFailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "kResourceExhausted";
    case StatusCode::kUnimplemented:
      return "kUnimplemented";
    case StatusCode::kInternal:
      return "kInternal";
    case StatusCode::kUnavailable:
      return "kUnavailable";
  }
  return "?";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace copart
