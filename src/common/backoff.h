// Exponential backoff with deterministic jitter, for retrying a flaky
// actuation surface (resctrl writes that return transient errors).
//
// Delays are unitless — the resource manager interprets them as control
// periods, a CLI retry loop could read them as seconds. For failure n
// (1-based) the base delay is initial * multiplier^(n-1), capped at max,
// then stretched by a jitter factor drawn uniformly from
// [1 - jitter, 1 + jitter]. The jitter stream comes from an explicit Rng
// seed, so a retry schedule replays bit-for-bit
// (tests/common_backoff_test.cc) and sweeps containing hardened
// controllers stay deterministic across thread counts.
#ifndef COPART_COMMON_BACKOFF_H_
#define COPART_COMMON_BACKOFF_H_

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace copart {

struct BackoffOptions {
  double initial = 1.0;     // Delay after the first failure.
  double multiplier = 2.0;  // Growth per consecutive failure.
  double max = 8.0;         // Cap on the un-jittered delay.
  double jitter = 0.25;     // Relative jitter half-width in [0, 1).
};

class Backoff {
 public:
  Backoff(const BackoffOptions& options, Rng rng)
      : options_(options), rng_(rng) {
    CHECK_GT(options_.initial, 0.0);
    CHECK_GE(options_.multiplier, 1.0);
    CHECK_GE(options_.max, options_.initial);
    CHECK_GE(options_.jitter, 0.0);
    CHECK_LT(options_.jitter, 1.0);
  }

  Backoff(const BackoffOptions& options, uint64_t seed)
      : Backoff(options, Rng(seed)) {}

  // Records one more consecutive failure and returns the delay to wait
  // before the next attempt.
  double NextDelay() {
    double delay = options_.initial;
    for (int i = 0; i < failures_ && delay < options_.max; ++i) {
      delay *= options_.multiplier;
    }
    ++failures_;
    delay = std::min(delay, options_.max);
    const double stretch =
        1.0 + options_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    return delay * stretch;
  }

  // Success: the next failure starts the schedule over. The jitter stream
  // is deliberately NOT rewound — two schedules after two distinct outages
  // draw different jitter, like wall-clock-seeded implementations.
  void Reset() { failures_ = 0; }

  // Consecutive failures recorded since the last Reset().
  int failures() const { return failures_; }

 private:
  BackoffOptions options_;
  Rng rng_;
  int failures_ = 0;
};

}  // namespace copart

#endif  // COPART_COMMON_BACKOFF_H_
