#include "common/parallel.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include <time.h>

namespace copart {
namespace {

// Marks threads that belong to some ThreadPool so nested parallel regions
// can be rejected before they deadlock.
thread_local bool tls_on_worker_thread = false;

double ProcessCpuSeconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return 0.0;
}

}  // namespace

uint32_t ParallelConfig::ResolveThreads() const {
  if (num_threads > 0) {
    return num_threads;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

ParallelConfig ParseThreadsFlag(int& argc, char** argv) {
  ParallelConfig config;
  auto parse = [](const char* text) {
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < 1 ||
        value > std::numeric_limits<int32_t>::max()) {
      std::fprintf(stderr, "invalid --threads value: %s\n", text);
      std::exit(2);
    }
    return static_cast<uint32_t>(value);
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      config.num_threads = parse(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      config.num_threads = parse(argv[i] + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return config;
}

double SweepStats::utilization() const {
  if (cells_completed == 0 || threads == 0 || wall_sec <= 0.0) {
    return 0.0;
  }
  return cpu_sec / (wall_sec * threads);
}

std::string SweepStats::Summary() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%zu cells, %u thread%s, %.3fs wall, %.3fs cpu, "
                "%.0f%% utilization",
                cells_completed, threads, threads == 1 ? "" : "s", wall_sec,
                cpu_sec, 100.0 * utilization());
  return buffer;
}

std::string SweepStats::ToJson() const {
  char buffer[224];
  std::snprintf(buffer, sizeof(buffer),
                "{\"cells\": %zu, \"threads\": %u, \"wall_sec\": %.6f, "
                "\"cpu_sec\": %.6f, \"utilization\": %.4f}",
                cells_completed, threads, wall_sec, cpu_sec, utilization());
  return buffer;
}

ThreadPool::ThreadPool(uint32_t num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity > 0 ? queue_capacity : 1) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    shutting_down_ = true;
  }
  queue_not_empty_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::OnWorkerThread() { return tls_on_worker_thread; }

void ThreadPool::Submit(std::function<void()> task) {
  if (tls_on_worker_thread) {
    throw std::logic_error(
        "ThreadPool::Submit called from a pool worker thread");
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_not_full_.wait(
        lock, [this] { return queue_.size() < queue_capacity_; });
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  queue_not_empty_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  tls_on_worker_thread = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_not_empty_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_not_full_.notify_one();
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (error && !first_error_) {
        first_error_ = error;
      }
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(const ParallelConfig& config, size_t n,
                 const std::function<void(size_t)>& body,
                 SweepStats* stats) {
  const uint32_t threads = static_cast<uint32_t>(
      std::min<size_t>(config.ResolveThreads(), n > 0 ? n : 1));
  const auto wall_start = std::chrono::steady_clock::now();
  const double cpu_start = ProcessCpuSeconds();
  auto finish = [&](size_t cells) {
    if (stats != nullptr) {
      stats->cells_completed = cells;
      stats->threads = threads;
      stats->wall_sec = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
      stats->cpu_sec = ProcessCpuSeconds() - cpu_start;
    }
  };

  if (n == 0) {
    finish(0);
    return;
  }
  if (threads <= 1) {
    // Inline serial execution: always allowed, even inside another
    // parallel region (cells may run nested searches serially).
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    finish(n);
    return;
  }
  if (ThreadPool::OnWorkerThread()) {
    throw std::logic_error(
        "nested ParallelFor: a parallel region may not start another one "
        "with num_threads != 1");
  }

  // Dynamic load balancing over a shared cursor: workers claim the next
  // unclaimed index. Which worker runs which cell varies run to run, but
  // each cell's result depends only on its index, so output does not.
  std::atomic<size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::atomic<size_t> completed{0};
  std::mutex error_mutex;
  size_t error_index = std::numeric_limits<size_t>::max();
  std::exception_ptr error;

  {
    ThreadPool pool(threads, /*queue_capacity=*/threads);
    for (uint32_t t = 0; t < threads; ++t) {
      pool.Submit([&] {
        while (!cancelled.load(std::memory_order_relaxed)) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) {
            return;
          }
          try {
            body(i);
            completed.fetch_add(1, std::memory_order_relaxed);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (i < error_index) {
              error_index = i;
              error = std::current_exception();
            }
            cancelled.store(true, std::memory_order_relaxed);
          }
        }
      });
    }
    pool.Wait();
  }

  finish(completed.load());
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace copart
