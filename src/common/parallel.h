// Deterministic parallel execution for the experiment harness.
//
// Every figure-reproduction path fans out over hundreds of independent
// simulation cells (solo heatmaps, fairness grids, the replication matrix,
// the ST oracle's allocation search, what-if placement scoring). This module
// gives those sites a shared engine:
//
//   ThreadPool    — a fixed-size pool with a bounded task queue and
//                   exception propagation (Wait() rethrows).
//   ParallelFor   — runs body(0..n) across the pool; cells claim indices
//                   from an atomic cursor, so load-balancing is dynamic but
//                   every result lands in its own index slot.
//   ParallelMap   — ParallelFor that collects one value per index.
//
// Determinism contract: a cell may depend only on its index (each sweep
// derives per-cell RNG streams with Rng::Fork(cell_index)), and reductions
// over cell results happen serially in index order after the fan-out. Under
// that contract results are bit-identical for every thread count and every
// scheduling order; tests/harness_determinism_test.cc enforces it for the
// shipped sweeps.
//
// ParallelFor with more than one resolved thread must not be nested: calling
// it from a worker thread throws std::logic_error. A resolved thread count
// of 1 always runs inline on the calling thread and is allowed anywhere
// (this is how RunExperiment-internal searches stay usable inside a
// parallel replication fan-out).
#ifndef COPART_COMMON_PARALLEL_H_
#define COPART_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace copart {

// How a sweep fans out across worker threads.
struct ParallelConfig {
  // 0 = use the hardware concurrency; 1 = run inline on the calling thread.
  uint32_t num_threads = 0;

  // The actual worker count: num_threads, or the hardware concurrency
  // (minimum 1) when num_threads is 0.
  uint32_t ResolveThreads() const;
};

// Parses and strips a `--threads=N` or `--threads N` flag from argv, for
// the bench and tool CLIs. All other arguments are left in place (argc is
// updated). An unparsable or zero-less-than value exits with status 2.
ParallelConfig ParseThreadsFlag(int& argc, char** argv);

// Observability for one parallel sweep: how many cells ran, on how many
// threads, and how well the threads were utilized.
struct SweepStats {
  size_t cells_completed = 0;
  uint32_t threads = 0;
  double wall_sec = 0.0;
  double cpu_sec = 0.0;  // Process CPU time consumed during the sweep.

  // cpu_sec / (wall_sec * threads); 1.0 = every worker busy the whole time.
  // Can exceed 1 slightly when other process threads burn CPU concurrently.
  double utilization() const;

  // One human-readable line, e.g.
  //   "110 cells, 8 threads, 0.42s wall, 3.21s cpu, 96% utilization".
  std::string Summary() const;

  // Machine-readable form for the bench logs, e.g.
  //   {"cells": 110, "threads": 8, "wall_sec": 0.42, ...}.
  std::string ToJson() const;
};

// Fixed-size thread pool with a bounded task queue. Submit() blocks while
// the queue is at capacity (backpressure instead of unbounded growth);
// Wait() blocks until every submitted task has finished and rethrows the
// first exception a task raised, if any.
class ThreadPool {
 public:
  explicit ThreadPool(uint32_t num_threads, size_t queue_capacity = 256);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `task`; blocks while the queue is full. Must not be called
  // from one of this pool's own workers (a full queue would deadlock);
  // throws std::logic_error if it is.
  void Submit(std::function<void()> task);

  // Drains the pool: returns once all submitted tasks have completed.
  // Rethrows the first captured task exception (subsequent ones are
  // dropped). The pool remains usable afterwards.
  void Wait();

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  // True when the calling thread is a worker of *any* ThreadPool; used to
  // reject nested parallel regions.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable queue_not_full_;
  std::condition_variable queue_not_empty_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t queue_capacity_;
  size_t in_flight_ = 0;  // Queued + currently executing tasks.
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

// Runs body(i) for i in [0, n) across ResolveThreads() workers and blocks
// until all cells finish. If `stats` is non-null it receives the sweep's
// cell count and wall/CPU timing. If any body invocation throws, remaining
// unstarted cells are skipped and the lowest-indexed captured exception is
// rethrown here. Throws std::logic_error when called with a resolved
// thread count > 1 from inside another parallel region.
void ParallelFor(const ParallelConfig& config, size_t n,
                 const std::function<void(size_t)>& body,
                 SweepStats* stats = nullptr);

// ParallelFor that collects fn(i) into slot i of the result. T must be
// default-constructible; each slot is written exactly once, by the worker
// that claimed the index, so no synchronization of results is needed.
template <typename T, typename Fn>
std::vector<T> ParallelMap(const ParallelConfig& config, size_t n, Fn&& fn,
                           SweepStats* stats = nullptr) {
  std::vector<T> results(n);
  ParallelFor(
      config, n, [&](size_t i) { results[i] = fn(i); }, stats);
  return results;
}

}  // namespace copart

#endif  // COPART_COMMON_PARALLEL_H_
