// Minimal streaming JSON writer for the bench/report emitters.
//
// The perf baselines (BENCH_*.json) are committed files diffed by humans and
// parsed by tools/run_perf_smoke.sh with grep/sed, so the writer's job is a
// *stable, line-oriented* rendering rather than generality: multi-line
// objects and arrays with two-space indentation, commas at the end of the
// preceding line (never hand-rolled leading commas), and one-line inline
// objects for array elements so each data point stays a single greppable
// line:
//
//   {
//     "bench": "sim_throughput",
//     "results": [
//       {"mode": "exact", "apps": 2, "epochs_per_sec": 82750.0},
//       {"mode": "managed", "apps": 4, "epochs_per_sec": 3400000.0}
//     ],
//     "speedup_compiled_over_exact": 20.29
//   }
//
// The writer tracks nesting and element counts; callers never emit
// separators. Keys are written verbatim (no escaping — callers pass literal
// identifiers); string values get minimal escaping of '"' and '\'.
#ifndef COPART_COMMON_JSON_WRITER_H_
#define COPART_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace copart {

class JsonWriter {
 public:
  // Writes to `out` (not owned, must outlive the writer). Begin the document
  // with BeginObject() and balance every Begin* with the matching End*;
  // EndDocument() closes the root and emits the trailing newline.
  explicit JsonWriter(std::FILE* out);

  // --- Containers ---

  // Multi-line object: `{` at the current position, members indented one
  // level. The root call takes no key; nested objects take the member key.
  void BeginObject();
  void BeginObject(const char* key);
  void EndObject();

  // Multi-line array member; elements are indented one level.
  void BeginArray(const char* key);
  void EndArray();

  // One-line object — as an array element (no key) or as a member (key).
  // Scalars written inside it stay on the same line, separated by ", ".
  void BeginInlineObject();
  void BeginInlineObject(const char* key);
  void EndInlineObject();

  // --- Scalars (key forms for objects; keyless forms for array elements) ---

  void String(const char* key, const std::string& value);
  void Uint(const char* key, uint64_t value);
  // Fixed-point rendering with `decimals` digits (matches the %.Nf the
  // hand-rolled emitters used, keeping baselines diff-stable).
  void Double(const char* key, double value, int decimals);

  // Closes the root object and writes the final newline.
  void EndDocument();

 private:
  enum class Frame : uint8_t { kObject, kArray, kInline };

  // Comma/newline/indent bookkeeping before any value or container opener.
  void BeginItem(const char* key);
  void Indent();

  std::FILE* out_;
  std::vector<Frame> stack_;
  std::vector<uint32_t> counts_;
};

}  // namespace copart

#endif  // COPART_COMMON_JSON_WRITER_H_
