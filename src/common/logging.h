// Minimal logging and assertion facilities for the CoPart library.
//
// The library is exception-free: unrecoverable programming errors abort via
// CHECK macros, recoverable errors flow through common/status.h. Log output
// goes to stderr and can be filtered by severity at runtime.
#ifndef COPART_COMMON_LOGGING_H_
#define COPART_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace copart {

enum class LogSeverity : int32_t {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Returns the current minimum severity that will be emitted.
LogSeverity MinLogSeverity();

// Sets the minimum severity that will be emitted. Thread-safe.
void SetMinLogSeverity(LogSeverity severity);

namespace internal {

// Accumulates one log statement and emits it (with file:line prefix) on
// destruction. A kFatal message aborts the process after emission.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out or
// filtered; keeps `LOG(...) << x;` well-formed in all configurations.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Turns a streamed LogMessage expression into void so it can sit on one arm
// of the CHECK ternary ("voidify" idiom): `&` binds looser than `<<` but
// tighter than `?:`.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace copart

#define COPART_LOG_INTERNAL(severity)                                        \
  ::copart::internal::LogMessage(severity, __FILE__, __LINE__).stream()

#define LOG_DEBUG COPART_LOG_INTERNAL(::copart::LogSeverity::kDebug)
#define LOG_INFO COPART_LOG_INTERNAL(::copart::LogSeverity::kInfo)
#define LOG_WARNING COPART_LOG_INTERNAL(::copart::LogSeverity::kWarning)
#define LOG_ERROR COPART_LOG_INTERNAL(::copart::LogSeverity::kError)
#define LOG_FATAL COPART_LOG_INTERNAL(::copart::LogSeverity::kFatal)

// CHECK aborts (after logging) when `condition` is false. Active in all build
// modes: the simulator's correctness invariants are cheap relative to the
// epoch solver, and silent corruption is far more expensive than the branch.
#define CHECK(condition)                                                     \
  (condition) ? (void)0                                                      \
              : ::copart::internal::LogMessageVoidify() &                    \
                    COPART_LOG_INTERNAL(::copart::LogSeverity::kFatal)       \
                        << "Check failed: " #condition " "

#define CHECK_OP(lhs, rhs, op)                                               \
  ((lhs)op(rhs)) ? (void)0                                                   \
                 : ::copart::internal::LogMessageVoidify() &                 \
                       COPART_LOG_INTERNAL(::copart::LogSeverity::kFatal)    \
                           << "Check failed: " #lhs " " #op " " #rhs         \
                           << " (lhs=" << (lhs) << ", rhs=" << (rhs) << ") "

#define CHECK_EQ(lhs, rhs) CHECK_OP(lhs, rhs, ==)
#define CHECK_NE(lhs, rhs) CHECK_OP(lhs, rhs, !=)
#define CHECK_LT(lhs, rhs) CHECK_OP(lhs, rhs, <)
#define CHECK_LE(lhs, rhs) CHECK_OP(lhs, rhs, <=)
#define CHECK_GT(lhs, rhs) CHECK_OP(lhs, rhs, >)
#define CHECK_GE(lhs, rhs) CHECK_OP(lhs, rhs, >=)

#endif  // COPART_COMMON_LOGGING_H_
