#include "container/container_runtime.h"

#include "common/logging.h"

namespace copart {

ContainerRuntime::ContainerRuntime(SimulatedMachine* machine,
                                   Resctrl* resctrl)
    : machine_(machine), resctrl_(resctrl) {
  CHECK_NE(machine, nullptr);
  CHECK_NE(resctrl, nullptr);
}

Result<ContainerInfo> ContainerRuntime::Run(const std::string& name,
                                            const WorkloadDescriptor& workload,
                                            uint32_t cpus) {
  if (name.empty()) {
    return InvalidArgumentError("container name must not be empty");
  }
  for (const ContainerInfo& container : containers_) {
    if (container.name == name) {
      return AlreadyExistsError("container already exists: " + name);
    }
  }
  Result<AppId> app = machine_->LaunchApp(workload, cpus);
  if (!app.ok()) {
    return app.status();
  }
  Result<ResctrlGroupId> group = resctrl_->CreateGroup("container_" + name);
  if (!group.ok()) {
    // Roll back the launch so a CLOS-exhausted runtime leaves no orphan app.
    Status terminated = machine_->TerminateApp(*app);
    CHECK(terminated.ok()) << terminated.ToString();
    return group.status();
  }
  Status assigned = resctrl_->AssignApp(*group, *app);
  CHECK(assigned.ok()) << assigned.ToString();

  ContainerInfo info{.name = name,
                     .app = *app,
                     .group = *group,
                     .cpus = cpus,
                     .workload_name = workload.name};
  containers_.push_back(info);
  return info;
}

Status ContainerRuntime::Stop(const std::string& name) {
  for (size_t i = 0; i < containers_.size(); ++i) {
    if (containers_[i].name == name) {
      RETURN_IF_ERROR(machine_->TerminateApp(containers_[i].app));
      Status removed = resctrl_->RemoveGroup(containers_[i].group);
      CHECK(removed.ok()) << removed.ToString();
      containers_.erase(containers_.begin() + static_cast<ptrdiff_t>(i));
      return Status::Ok();
    }
  }
  return NotFoundError("no such container: " + name);
}

Result<ContainerInfo> ContainerRuntime::Find(const std::string& name) const {
  for (const ContainerInfo& container : containers_) {
    if (container.name == name) {
      return container;
    }
  }
  return NotFoundError("no such container: " + name);
}

std::vector<ContainerInfo> ContainerRuntime::List() const {
  return containers_;
}

ContainerStats ContainerRuntime::Stats(const std::string& name) const {
  Result<ContainerInfo> info = Find(name);
  CHECK(info.ok()) << info.status().ToString();
  const AppEpochSnapshot& epoch = machine_->LastEpoch(info->app);
  ContainerStats stats;
  stats.ips = epoch.ips;
  stats.llc_occupancy_bytes = epoch.effective_capacity_bytes;
  stats.memory_bandwidth_bytes_per_sec =
      epoch.llc_misses_per_sec * machine_->config().llc.line_bytes;
  // Report the schemata of the group the app is *currently* bound to (the
  // CoPart manager may have re-grouped it).
  stats.schemata =
      resctrl_->ReadSchemata(ResctrlGroupId(machine_->AppClos(info->app)));
  return stats;
}

}  // namespace copart
