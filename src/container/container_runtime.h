// Container-based consolidation front end (paper §2.1, §3.3).
//
// The paper runs every benchmark in its own Linux container: a cgroup
// cpuset pinning the threads to dedicated cores plus a resctrl group for
// the partitioning state. ContainerRuntime reproduces that surface over the
// simulated machine: `Run` launches a workload on dedicated cores inside a
// named container with its own resctrl group; `Stop` tears both down.
//
// The CoPart ResourceManager can manage containerized apps directly — like
// the real prototype, it re-binds the tasks to its own per-app groups while
// adapting (the container's group remains, simply empty of tasks).
#ifndef COPART_CONTAINER_CONTAINER_RUNTIME_H_
#define COPART_CONTAINER_CONTAINER_RUNTIME_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "machine/app_id.h"
#include "machine/simulated_machine.h"
#include "resctrl/resctrl.h"

namespace copart {

struct ContainerInfo {
  std::string name;
  AppId app;
  ResctrlGroupId group;
  uint32_t cpus = 0;
  std::string workload_name;
};

// Point-in-time resource usage of one container.
struct ContainerStats {
  double ips = 0.0;
  double llc_occupancy_bytes = 0.0;
  double memory_bandwidth_bytes_per_sec = 0.0;
  std::string schemata;
};

class ContainerRuntime {
 public:
  ContainerRuntime(SimulatedMachine* machine, Resctrl* resctrl);

  // Launches `workload` in a new container with `cpus` dedicated cores.
  // Fails on duplicate names, core exhaustion, or CLOS exhaustion (each
  // container owns a resctrl group).
  Result<ContainerInfo> Run(const std::string& name,
                            const WorkloadDescriptor& workload, uint32_t cpus);

  // Terminates the container's app and removes its group.
  Status Stop(const std::string& name);

  Result<ContainerInfo> Find(const std::string& name) const;
  std::vector<ContainerInfo> List() const;

  // Live stats from the machine's counters and the group's monitoring
  // files. CHECK-fails on an unknown name (use Find to probe existence).
  ContainerStats Stats(const std::string& name) const;

 private:
  SimulatedMachine* machine_;  // Not owned.
  Resctrl* resctrl_;           // Not owned.
  std::vector<ContainerInfo> containers_;
};

}  // namespace copart

#endif  // COPART_CONTAINER_CONTAINER_RUNTIME_H_
