#include "membw/mba.h"

#include "common/logging.h"

namespace copart {

Result<MbaLevel> MbaLevel::FromPercent(uint32_t percent) {
  if (percent < kMin || percent > kMax) {
    return OutOfRangeError("MBA level must be in [10, 100]");
  }
  if (percent % kStep != 0) {
    return InvalidArgumentError("MBA level must be a multiple of 10");
  }
  return MbaLevel(percent);
}

MbaLevel MbaLevel::FromPercentChecked(uint32_t percent) {
  Result<MbaLevel> level = FromPercent(percent);
  CHECK(level.ok()) << level.status().ToString();
  return *level;
}

MbaLevel MbaLevel::Increased() const {
  CHECK(CanIncrease());
  return MbaLevel(percent_ + kStep);
}

MbaLevel MbaLevel::Decreased() const {
  CHECK(CanDecrease());
  return MbaLevel(percent_ - kStep);
}

}  // namespace copart
