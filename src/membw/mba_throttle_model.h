// Mapping from an MBA level to the bandwidth cap it imposes on a CLOS.
//
// Intel MBA is approximate: the programmed percentage is a *request-rate*
// throttle, and the achievable bandwidth fraction at low levels is typically
// higher than the programmed value (the delay-based mechanism under-throttles
// streams with high memory-level parallelism). We model the cap as
//
//     cap(level) = (level/100)^exponent * total_bandwidth
//
// with exponent < 1 (default 0.7), which reproduces the paper's measured
// thresholds: CG (~7.5 GB/s demand) retains >=90% performance at level 20
// while losing >10% at level 10 (paper §4.1), and STREAM's achieved traffic
// remains monotone in the level (used as the traffic-ratio reference, §5.3).
// The latency-side effect of MBA (per-request delay hurting low-MLP apps
// even when bandwidth is plentiful) is modeled separately per workload via
// WorkloadDescriptor::mba_kappa.
#ifndef COPART_MEMBW_MBA_THROTTLE_MODEL_H_
#define COPART_MEMBW_MBA_THROTTLE_MODEL_H_

#include <cmath>

#include "common/logging.h"
#include "membw/mba.h"

namespace copart {

class MbaThrottleModel {
 public:
  explicit MbaThrottleModel(double exponent = 0.7) : exponent_(exponent) {
    CHECK_GT(exponent, 0.0);
  }

  // Fraction of the controller's total bandwidth this CLOS may inject.
  // 1.0 at level 100.
  double CapFraction(MbaLevel level) const {
    return std::pow(level.percent() / 100.0, exponent_);
  }

  double exponent() const { return exponent_; }

 private:
  double exponent_;
};

}  // namespace copart

#endif  // COPART_MEMBW_MBA_THROTTLE_MODEL_H_
