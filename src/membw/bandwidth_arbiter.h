// Shared memory-controller model.
//
// Each consolidated application presents a bandwidth *demand* (the traffic it
// would generate if memory were infinitely fast, derived from its LLC miss
// rate) and a *cap* (the MBA throttle limit, computed by MbaThrottleModel).
// The controller grants bandwidth max-min fairly: demands below the fair
// share are fully satisfied, the remainder is split evenly — reflecting the
// per-requester fairness of commodity memory controllers under saturation.
//
// The grants feed the epoch performance model: an app granted less than its
// demand becomes bandwidth-bound at grant/(misses_per_instr * line_bytes)
// instructions per second (roofline).
#ifndef COPART_MEMBW_BANDWIDTH_ARBITER_H_
#define COPART_MEMBW_BANDWIDTH_ARBITER_H_

#include <cstdint>
#include <vector>

namespace copart {

struct BandwidthRequest {
  double demand_bytes_per_sec = 0.0;
  // Injection cap from the MBA throttle; use total bandwidth for "no cap".
  double cap_bytes_per_sec = 0.0;
};

class BandwidthArbiter {
 public:
  explicit BandwidthArbiter(double total_bytes_per_sec);

  // Grants bandwidth to each request. Output has the same size/order as
  // `requests`. Guarantees:
  //   - grant_i <= min(demand_i, cap_i)
  //   - sum(grant) <= total (+ epsilon)
  //   - max-min fair among the capped demands.
  std::vector<double> Arbitrate(
      const std::vector<BandwidthRequest>& requests) const;

  // Allocation-free variant for the epoch hot path: writes into `*grants`
  // and reuses member scratch, so repeated calls at a stable request count
  // never touch the heap.
  void ArbitrateInto(const std::vector<BandwidthRequest>& requests,
                     std::vector<double>* grants);

  // Flat-array entry point for the SoA epoch kernel: `capped` must already
  // hold min(demand, cap) per app, each >= 0 (not re-validated here).
  // Allocation-free at a stable request count, like ArbitrateInto.
  void ArbitrateCappedInto(const std::vector<double>& capped,
                           std::vector<double>* grants);

  double total_bytes_per_sec() const { return total_bytes_per_sec_; }

 private:
  // Water-filling over pre-capped demands in `capped`; `satisfied` is
  // caller-provided scratch of the same size.
  void ArbitrateImpl(const std::vector<double>& capped,
                     std::vector<uint8_t>& satisfied,
                     std::vector<double>& grants) const;

  double total_bytes_per_sec_;
  std::vector<double> scratch_capped_;
  std::vector<uint8_t> scratch_satisfied_;
};

}  // namespace copart

#endif  // COPART_MEMBW_BANDWIDTH_ARBITER_H_
