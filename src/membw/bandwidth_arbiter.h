// Shared memory-controller model.
//
// Each consolidated application presents a bandwidth *demand* (the traffic it
// would generate if memory were infinitely fast, derived from its LLC miss
// rate) and a *cap* (the MBA throttle limit, computed by MbaThrottleModel).
// The controller grants bandwidth max-min fairly: demands below the fair
// share are fully satisfied, the remainder is split evenly — reflecting the
// per-requester fairness of commodity memory controllers under saturation.
//
// The grants feed the epoch performance model: an app granted less than its
// demand becomes bandwidth-bound at grant/(misses_per_instr * line_bytes)
// instructions per second (roofline).
#ifndef COPART_MEMBW_BANDWIDTH_ARBITER_H_
#define COPART_MEMBW_BANDWIDTH_ARBITER_H_

#include <cstdint>
#include <vector>

namespace copart {

struct BandwidthRequest {
  double demand_bytes_per_sec = 0.0;
  // Injection cap from the MBA throttle; use total bandwidth for "no cap".
  double cap_bytes_per_sec = 0.0;
};

class BandwidthArbiter {
 public:
  explicit BandwidthArbiter(double total_bytes_per_sec);

  // Grants bandwidth to each request. Output has the same size/order as
  // `requests`. Guarantees:
  //   - grant_i <= min(demand_i, cap_i)
  //   - sum(grant) <= total (+ epsilon)
  //   - max-min fair among the capped demands.
  std::vector<double> Arbitrate(
      const std::vector<BandwidthRequest>& requests) const;

  double total_bytes_per_sec() const { return total_bytes_per_sec_; }

 private:
  double total_bytes_per_sec_;
};

}  // namespace copart

#endif  // COPART_MEMBW_BANDWIDTH_ARBITER_H_
