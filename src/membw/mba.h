// Intel MBA (Memory Bandwidth Allocation) level semantics.
//
// MBA exposes a per-CLOS throttle on the traffic between the L2 and the LLC,
// programmable from 100% (no throttling) down to 10% in steps of 10
// (paper §3.1). MbaLevel validates and manipulates those levels; the actual
// bandwidth effect is modeled by BandwidthArbiter.
#ifndef COPART_MEMBW_MBA_H_
#define COPART_MEMBW_MBA_H_

#include <cstdint>

#include "common/status.h"

namespace copart {

class MbaLevel {
 public:
  static constexpr uint32_t kMin = 10;
  static constexpr uint32_t kMax = 100;
  static constexpr uint32_t kStep = 10;

  // Defaults to 100% (unthrottled), the hardware reset value.
  MbaLevel() = default;

  // Validates `percent` as a legal MBA value (10..100, multiple of 10).
  static Result<MbaLevel> FromPercent(uint32_t percent);

  // CHECK-failing constructor for values known valid at the call site.
  static MbaLevel FromPercentChecked(uint32_t percent);

  uint32_t percent() const { return percent_; }
  double Fraction() const { return percent_ / 100.0; }

  bool CanIncrease() const { return percent_ < kMax; }
  bool CanDecrease() const { return percent_ > kMin; }
  MbaLevel Increased() const;
  MbaLevel Decreased() const;

  // Number of discrete steps above the minimum ("resource units" the
  // controller can move around).
  uint32_t StepsAboveMin() const { return (percent_ - kMin) / kStep; }

  bool operator==(const MbaLevel& other) const = default;
  auto operator<=>(const MbaLevel& other) const = default;

 private:
  explicit MbaLevel(uint32_t percent) : percent_(percent) {}

  uint32_t percent_ = kMax;
};

}  // namespace copart

#endif  // COPART_MEMBW_MBA_H_
