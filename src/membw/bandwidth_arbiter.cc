#include "membw/bandwidth_arbiter.h"

#include <algorithm>

#include "common/logging.h"

namespace copart {

BandwidthArbiter::BandwidthArbiter(double total_bytes_per_sec)
    : total_bytes_per_sec_(total_bytes_per_sec) {
  CHECK_GT(total_bytes_per_sec, 0.0);
}

std::vector<double> BandwidthArbiter::Arbitrate(
    const std::vector<BandwidthRequest>& requests) const {
  const size_t n = requests.size();
  // Effective demand: MBA throttles injection before the controller sees it.
  std::vector<double> capped(n);
  double total_demand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    CHECK_GE(requests[i].demand_bytes_per_sec, 0.0);
    CHECK_GE(requests[i].cap_bytes_per_sec, 0.0);
    capped[i] =
        std::min(requests[i].demand_bytes_per_sec, requests[i].cap_bytes_per_sec);
    total_demand += capped[i];
  }
  if (total_demand <= total_bytes_per_sec_) {
    return capped;
  }

  // Max-min water-filling: repeatedly satisfy every requester below the fair
  // level, recompute the level over the rest. Terminates in <= n rounds.
  std::vector<double> grants(n, 0.0);
  std::vector<bool> satisfied(n, false);
  double remaining = total_bytes_per_sec_;
  size_t active = n;
  while (active > 0) {
    const double fair_share = remaining / static_cast<double>(active);
    bool anyone_below = false;
    for (size_t i = 0; i < n; ++i) {
      if (!satisfied[i] && capped[i] <= fair_share) {
        grants[i] = capped[i];
        remaining -= capped[i];
        satisfied[i] = true;
        --active;
        anyone_below = true;
      }
    }
    if (!anyone_below) {
      // Everyone left wants more than the fair share: split evenly.
      for (size_t i = 0; i < n; ++i) {
        if (!satisfied[i]) {
          grants[i] = fair_share;
        }
      }
      break;
    }
  }
  return grants;
}

}  // namespace copart
