#include "membw/bandwidth_arbiter.h"

#include <algorithm>

#include "common/logging.h"

namespace copart {

BandwidthArbiter::BandwidthArbiter(double total_bytes_per_sec)
    : total_bytes_per_sec_(total_bytes_per_sec) {
  CHECK_GT(total_bytes_per_sec, 0.0);
}

void BandwidthArbiter::ArbitrateImpl(const std::vector<double>& capped,
                                     std::vector<uint8_t>& satisfied,
                                     std::vector<double>& grants) const {
  const size_t n = capped.size();
  double total_demand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total_demand += capped[i];
  }
  if (total_demand <= total_bytes_per_sec_) {
    grants.assign(capped.begin(), capped.end());
    return;
  }

  // Max-min water-filling: repeatedly satisfy every requester below the fair
  // level, recompute the level over the rest. Terminates in <= n rounds.
  grants.assign(n, 0.0);
  std::fill(satisfied.begin(), satisfied.end(), uint8_t{0});
  double remaining = total_bytes_per_sec_;
  size_t active = n;
  while (active > 0) {
    const double fair_share = remaining / static_cast<double>(active);
    bool anyone_below = false;
    for (size_t i = 0; i < n; ++i) {
      if (!satisfied[i] && capped[i] <= fair_share) {
        grants[i] = capped[i];
        remaining -= capped[i];
        satisfied[i] = 1;
        --active;
        anyone_below = true;
      }
    }
    if (!anyone_below) {
      // Everyone left wants more than the fair share: split evenly.
      for (size_t i = 0; i < n; ++i) {
        if (!satisfied[i]) {
          grants[i] = fair_share;
        }
      }
      break;
    }
  }
}

void BandwidthArbiter::ArbitrateInto(
    const std::vector<BandwidthRequest>& requests,
    std::vector<double>* grants) {
  const size_t n = requests.size();
  // Effective demand: MBA throttles injection before the controller sees it.
  scratch_capped_.resize(n);
  scratch_satisfied_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    CHECK_GE(requests[i].demand_bytes_per_sec, 0.0);
    CHECK_GE(requests[i].cap_bytes_per_sec, 0.0);
    scratch_capped_[i] = std::min(requests[i].demand_bytes_per_sec,
                                  requests[i].cap_bytes_per_sec);
  }
  ArbitrateImpl(scratch_capped_, scratch_satisfied_, *grants);
}

void BandwidthArbiter::ArbitrateCappedInto(const std::vector<double>& capped,
                                           std::vector<double>* grants) {
  scratch_satisfied_.resize(capped.size());
  ArbitrateImpl(capped, scratch_satisfied_, *grants);
}

std::vector<double> BandwidthArbiter::Arbitrate(
    const std::vector<BandwidthRequest>& requests) const {
  const size_t n = requests.size();
  std::vector<double> capped(n);
  std::vector<uint8_t> satisfied(n);
  for (size_t i = 0; i < n; ++i) {
    CHECK_GE(requests[i].demand_bytes_per_sec, 0.0);
    CHECK_GE(requests[i].cap_bytes_per_sec, 0.0);
    capped[i] = std::min(requests[i].demand_bytes_per_sec,
                         requests[i].cap_bytes_per_sec);
  }
  std::vector<double> grants;
  ArbitrateImpl(capped, satisfied, grants);
  return grants;
}

}  // namespace copart
