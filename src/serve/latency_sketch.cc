#include "serve/latency_sketch.h"

#include <algorithm>
#include <cmath>

namespace copart {
namespace {

// Precomputed bucket upper edges, shared by every sketch. edges[i] is the
// upper edge of bucket i+1 (bucket 0 is the underflow bucket with edge
// kMinLatencySec). Computed once with pow(); lookups afterwards only
// compare against these values, so any libm variation is frozen into the
// table at startup and identical for every sketch in the process.
struct EdgeTable {
  EdgeTable() {
    for (int i = 0; i < LatencySketch::kNumBuckets - 1; ++i) {
      edges[i] = LatencySketch::kMinLatencySec *
                 std::pow(10.0, static_cast<double>(i) /
                                    LatencySketch::kBucketsPerDecade);
    }
  }
  double edges[LatencySketch::kNumBuckets - 1];
};

const EdgeTable& Edges() {
  static const EdgeTable table;
  return table;
}

}  // namespace

LatencySketch::LatencySketch() { Clear(); }

void LatencySketch::Clear() {
  buckets_.fill(0);
  count_ = 0;
}

int LatencySketch::BucketIndex(double latency_sec) {
  const EdgeTable& table = Edges();
  const double value = latency_sec > 0.0 ? latency_sec : 0.0;
  if (value < table.edges[0]) {
    return 0;  // Underflow: below kMinLatencySec.
  }
  if (value >= table.edges[kNumBuckets - 2]) {
    return kNumBuckets - 1;  // Overflow.
  }
  // First edge strictly greater than value; the bucket owning (edge[i-1],
  // edge[i]] is i+1 (bucket 0 is underflow).
  const double* begin = table.edges;
  const double* end = table.edges + kNumBuckets - 1;
  const double* it = std::upper_bound(begin, end, value);
  return static_cast<int>(it - begin);
}

void LatencySketch::Record(double latency_sec) {
  ++buckets_[static_cast<size_t>(BucketIndex(latency_sec))];
  ++count_;
}

double LatencySketch::BucketUpperEdge(int index) {
  const EdgeTable& table = Edges();
  if (index <= 0) {
    return kMinLatencySec;
  }
  return table.edges[std::min(index, kNumBuckets - 2)];
}

double LatencySketch::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based: ceil(q * count), at least 1.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(clamped * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      return BucketUpperEdge(i);
    }
  }
  return BucketUpperEdge(kNumBuckets - 1);
}

void LatencySketch::Merge(const LatencySketch& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
}

}  // namespace copart
