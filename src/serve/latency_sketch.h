// Allocation-free streaming quantile sketch for request latencies.
//
// A fixed-bucket log-latency histogram: bucket edges grow geometrically
// from kMinLatencySec to kMaxLatencySec (kBucketsPerDecade per decade), so
// a quantile is reported as the upper edge of the bucket containing it —
// a deterministic overestimate whose relative error is bounded by the
// bucket ratio (10^(1/kBucketsPerDecade) - 1, about 7.5%). Everything is
// plain integer counters: Record() is a binary search plus an increment,
// no allocation, no floating-point accumulation order to worry about —
// the sketch merges and replays bit-identically for any thread count
// (DESIGN.md §9).
#ifndef COPART_SERVE_LATENCY_SKETCH_H_
#define COPART_SERVE_LATENCY_SKETCH_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace copart {

class LatencySketch {
 public:
  // 32 buckets per decade over [1 us, 100 s) plus an underflow and an
  // overflow bucket. The range comfortably covers sub-SLO latencies and
  // pathological overload backlogs alike.
  static constexpr int kBucketsPerDecade = 32;
  static constexpr int kDecades = 8;  // 1e-6 .. 1e2 seconds.
  static constexpr int kNumBuckets = kBucketsPerDecade * kDecades + 2;
  static constexpr double kMinLatencySec = 1e-6;

  LatencySketch();

  // Records one latency observation (seconds). Negative values count as 0.
  void Record(double latency_sec);

  // Latency (seconds) at quantile q in [0, 1]: the upper edge of the
  // bucket where the cumulative count first reaches q * count. 0 when the
  // sketch is empty. The underflow bucket reports kMinLatencySec and the
  // overflow bucket the largest edge (the sketch saturates, it never
  // extrapolates).
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  uint64_t overflow() const { return buckets_[kNumBuckets - 1]; }

  // Adds `other`'s counts into this sketch (same fixed geometry, so a
  // plain element-wise sum; used for the serial index-order reductions of
  // the sweep engine).
  void Merge(const LatencySketch& other);

  void Clear();

  // Upper edge (seconds) of bucket `index`; exposed for tests and the
  // metrics bridge.
  static double BucketUpperEdge(int index);

 private:
  // Index of the bucket containing `latency_sec` (branch-free range clamp
  // plus binary search over the precomputed edges — never floating log,
  // whose libm rounding may differ across toolchains).
  static int BucketIndex(double latency_sec);

  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t count_ = 0;
};

}  // namespace copart

#endif  // COPART_SERVE_LATENCY_SKETCH_H_
