// Deterministic discrete-event request server for one LC app.
//
// The LC surrogate's cores are modelled as one pooled FIFO server whose
// service rate each epoch is the app's effective IPS under its current
// CLOS mask + MBA level (AppEpochSnapshot::ips_capability) divided by the
// per-request instruction demand. Arrivals are open-loop (ArrivalGenerator,
// the offered load never backs off), the queue is a fixed-capacity ring of
// arrival timestamps (allocation-free after construction; the engine drops
// at the tail when full), and every completed request's sojourn time is
// recorded into two LatencySketches — a per-epoch one (the controller's
// feedback signal) and a cumulative one (the run-level tail estimate).
//
// AdvanceEpoch() runs the event loop over exactly one control period:
// events are the held pending arrival and the head-of-line completion,
// processed in time order with completions winning ties. Service demand
// is drawn when a request enters service, so the Rng draw order is fixed
// by the (deterministic) event sequence; the in-flight request's residual
// demand carries across epochs, which is how a mid-request CLOS resize
// changes its completion time. The conservation invariant
//
//   total_arrivals == total_completions + total_drops + queue_depth
//
// holds after every epoch (asserted by tests/serve_engine_test.cc).
#ifndef COPART_SERVE_SERVE_ENGINE_H_
#define COPART_SERVE_SERVE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/arrival.h"
#include "serve/latency_sketch.h"

namespace copart {

struct LcServerConfig {
  std::string name = "lc";
  ArrivalConfig arrival;
  // Mean instructions retired per request (service demand).
  double instructions_per_request = 60000.0;
  // Service-demand distribution: exponential with the mean above, or
  // deterministic (every request costs exactly the mean) when false.
  bool exponential_service = true;
  // Queue slots; arrivals beyond this are dropped (counted, not served).
  size_t queue_capacity = 1 << 16;
};

// One epoch's serving telemetry.
struct EpochServeStats {
  uint64_t arrivals = 0;     // Offered this epoch (including drops).
  uint64_t completions = 0;
  uint64_t drops = 0;
  uint64_t queue_depth_end = 0;
  double offered_rps = 0.0;  // arrivals / dt.
  // Sojourn-time percentiles of THIS epoch's completions (0 when none).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

class LcServer {
 public:
  // `rng` is the server's private stream; the constructor forks it into
  // independent arrival and service-demand streams, so multiple servers
  // seeded via Rng::Fork(index) never interleave draws.
  LcServer(const LcServerConfig& config, const Rng& rng);

  // Advances the server by one control period of `dt` seconds during
  // which the app's service capacity is `ips_capability` (instructions/s;
  // 0 stalls service, arrivals still queue).
  EpochServeStats AdvanceEpoch(double dt, double ips_capability);

  const LcServerConfig& config() const { return config_; }
  double now() const { return now_; }

  uint64_t total_arrivals() const { return total_arrivals_; }
  uint64_t total_completions() const { return total_completions_; }
  uint64_t total_drops() const { return total_drops_; }
  uint64_t queue_depth() const { return queue_.size_; }

  // Cumulative sojourn-time sketch over the whole run.
  const LatencySketch& cumulative_latency() const { return total_sketch_; }

 private:
  struct Ring {
    std::vector<double> slots;  // Arrival timestamps, FIFO order.
    size_t head = 0;
    size_t size_ = 0;
    bool full() const { return size_ == slots.size(); }
    double front() const { return slots[head]; }
    void push(double t) {
      slots[(head + size_) % slots.size()] = t;
      ++size_;
    }
    void pop() {
      head = (head + 1) % slots.size();
      --size_;
    }
  };

  void StartService();
  void RecordCompletion(double completion_time);

  LcServerConfig config_;
  Rng arrival_rng_;
  Rng service_rng_;
  ArrivalGenerator generator_;

  double now_ = 0.0;
  Ring queue_;
  // Next arrival drawn from the generator but not yet offered (its time
  // may lie beyond the current epoch).
  double pending_arrival_ = 0.0;
  bool have_pending_ = false;
  // Residual instruction demand of the head-of-line request, valid while
  // in_service_ (it entered service and survives epoch boundaries).
  double remaining_instructions_ = 0.0;
  bool in_service_ = false;

  LatencySketch epoch_sketch_;
  LatencySketch total_sketch_;
  uint64_t total_arrivals_ = 0;
  uint64_t total_completions_ = 0;
  uint64_t total_drops_ = 0;
};

}  // namespace copart

#endif  // COPART_SERVE_SERVE_ENGINE_H_
