#include "serve/arrival.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace copart {

ArrivalGenerator::ArrivalGenerator(const ArrivalConfig& config, Rng rng)
    : config_(config), rng_(rng) {
  CHECK_GT(config_.base_rate_rps, 0.0);
  if (config_.kind == ArrivalKind::kDiurnal) {
    CHECK_GT(config_.diurnal_period_sec, 0.0);
    CHECK_GE(config_.diurnal_amplitude, 0.0);
    CHECK_LE(config_.diurnal_amplitude, 1.0);
  }
  if (config_.kind == ArrivalKind::kFlashCrowd) {
    CHECK_GE(config_.flash_start_sec, 0.0);
    CHECK_GT(config_.flash_duration_sec, 0.0);
    CHECK_GE(config_.flash_multiplier, 0.0);
  }
  for (const BurstPhase& phase : config_.burst_phases) {
    CHECK_GT(phase.duration_sec, 0.0);
    CHECK_GE(phase.rate_multiplier, 0.0);
    cycle_sec_ += phase.duration_sec;
  }
}

double ArrivalRateAt(const ArrivalConfig& config, double t) {
  switch (config.kind) {
    case ArrivalKind::kPoisson:
      return config.base_rate_rps;
    case ArrivalKind::kDiurnal: {
      const double phase = 2.0 * M_PI * t / config.diurnal_period_sec;
      return std::max(
          0.0, config.base_rate_rps *
                   (1.0 + config.diurnal_amplitude * std::sin(phase)));
    }
    case ArrivalKind::kBurst: {
      double cycle_sec = 0.0;
      for (const BurstPhase& phase : config.burst_phases) {
        cycle_sec += phase.duration_sec;
      }
      if (cycle_sec <= 0.0) {
        return config.base_rate_rps;
      }
      double offset = std::fmod(t, cycle_sec);
      if (offset < 0.0) {
        offset += cycle_sec;
      }
      for (const BurstPhase& phase : config.burst_phases) {
        if (offset < phase.duration_sec) {
          return config.base_rate_rps * phase.rate_multiplier;
        }
        offset -= phase.duration_sec;
      }
      return config.base_rate_rps * config.burst_phases.back().rate_multiplier;
    }
    case ArrivalKind::kFlashCrowd: {
      const bool in_flash =
          t >= config.flash_start_sec &&
          t < config.flash_start_sec + config.flash_duration_sec;
      return in_flash ? config.base_rate_rps * config.flash_multiplier
                      : config.base_rate_rps;
    }
  }
  return config.base_rate_rps;
}

double ArrivalGenerator::RateAt(double t) const {
  return ArrivalRateAt(config_, t);
}

double ArrivalGenerator::PeakRate() const {
  switch (config_.kind) {
    case ArrivalKind::kPoisson:
      return config_.base_rate_rps;
    case ArrivalKind::kDiurnal:
      return config_.base_rate_rps * (1.0 + config_.diurnal_amplitude);
    case ArrivalKind::kBurst: {
      double peak = 1.0;
      for (const BurstPhase& phase : config_.burst_phases) {
        peak = std::max(peak, phase.rate_multiplier);
      }
      return config_.base_rate_rps * peak;
    }
    case ArrivalKind::kFlashCrowd:
      return config_.base_rate_rps * std::max(1.0, config_.flash_multiplier);
  }
  return config_.base_rate_rps;
}

double ArrivalGenerator::Next() {
  const double peak = PeakRate();
  for (;;) {
    t_ += rng_.NextExponential(1.0 / peak);
    // One uniform per candidate regardless of shape keeps the stream
    // layout identical across kinds (see the header).
    const double accept = rng_.NextDouble();
    if (accept * peak < RateAt(t_)) {
      return t_;
    }
  }
}

}  // namespace copart
