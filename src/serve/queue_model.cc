#include "serve/queue_model.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace copart {

double PredictedSojournSec(double offered_rps, double service_rps,
                           double percentile) {
  CHECK_GT(percentile, 0.0);
  CHECK_LT(percentile, 1.0);
  if (service_rps <= 0.0 || offered_rps >= service_rps) {
    return std::numeric_limits<double>::infinity();
  }
  const double offered = offered_rps > 0.0 ? offered_rps : 0.0;
  return -std::log(1.0 - percentile) / (service_rps - offered);
}

double PredictedP95Ms(double offered_rps, double service_rps) {
  return 1e3 * PredictedSojournSec(offered_rps, service_rps, 0.95);
}

double RequiredServiceRps(double offered_rps, double target_sec,
                          double percentile) {
  CHECK_GT(target_sec, 0.0);
  CHECK_GT(percentile, 0.0);
  CHECK_LT(percentile, 1.0);
  const double offered = offered_rps > 0.0 ? offered_rps : 0.0;
  return offered - std::log(1.0 - percentile) / target_sec;
}

}  // namespace copart
