// Analytic queueing predictor shared by the SLO governor and harnesses.
//
// The LC surrogate is modelled as an M/M/1 FIFO server: Poisson arrivals
// at `offered_rps`, exponential service at `service_rps` (the app's
// epoch IPS capability divided by its per-request instruction demand).
// The sojourn time is then exponential with rate (mu - lambda), so the
// p-th percentile is -ln(1-p) / (mu - lambda). This one closed form
// replaces the ad-hoc shape-factor model the §6.3 case study used to
// carry inline (it is also exactly the distribution the discrete-event
// engine realises, so predictor and measurement agree by construction).
#ifndef COPART_SERVE_QUEUE_MODEL_H_
#define COPART_SERVE_QUEUE_MODEL_H_

namespace copart {

// Predicted sojourn-time percentile (seconds). Returns +infinity when the
// queue is unstable (offered >= service) or service is 0.
double PredictedSojournSec(double offered_rps, double service_rps,
                           double percentile);

// The p95 special case, in milliseconds (the SLO's native unit).
double PredictedP95Ms(double offered_rps, double service_rps);

// Smallest service rate (requests/s) for which the predicted sojourn
// percentile meets `target_sec`. Inverts PredictedSojournSec.
double RequiredServiceRps(double offered_rps, double target_sec,
                          double percentile);

}  // namespace copart

#endif  // COPART_SERVE_QUEUE_MODEL_H_
