// Open-loop request arrival generators for the serve engine.
//
// Three shapes, all driven from explicitly forked Rng streams so a
// multi-server scenario replays bit-for-bit (DESIGN.md §9):
//
//   - kPoisson:    homogeneous Poisson process at base_rate_rps.
//   - kDiurnal:    sinusoidal rate ramp, base * (1 + amplitude*sin(2*pi*t/T)).
//   - kBurst:      piecewise-constant rate phases cycling through
//                  burst_phases (the §6.3 load-step trace is one of these).
//   - kFlashCrowd: base rate everywhere except one [start, start+duration)
//                  window at base * flash_multiplier — the one-shot
//                  flash-crowd step (it does NOT cycle like kBurst).
//
// The time-varying shapes use Lewis–Shedler thinning against the peak
// rate: candidate arrivals are drawn from a homogeneous process at
// PeakRate() and accepted with probability RateAt(t)/PeakRate(). The
// draw sequence (one exponential + one uniform per candidate) is fixed
// for every shape — including plain Poisson — so switching shapes never
// shifts a co-located generator's stream.
#ifndef COPART_SERVE_ARRIVAL_H_
#define COPART_SERVE_ARRIVAL_H_

#include <vector>

#include "common/rng.h"

namespace copart {

enum class ArrivalKind { kPoisson, kDiurnal, kBurst, kFlashCrowd };

// One piecewise-constant phase of a kBurst trace; phases cycle.
struct BurstPhase {
  double duration_sec = 0.0;
  double rate_multiplier = 1.0;  // Applied to base_rate_rps.
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double base_rate_rps = 1000.0;

  // kDiurnal: rate = base * (1 + amplitude * sin(2*pi*t/period)), >= 0.
  double diurnal_period_sec = 86400.0;
  double diurnal_amplitude = 0.5;  // In [0, 1].

  // kBurst phases, cycled for the lifetime of the generator. Empty falls
  // back to the constant base rate.
  std::vector<BurstPhase> burst_phases;

  // kFlashCrowd: rate = base * flash_multiplier while
  // t in [flash_start_sec, flash_start_sec + flash_duration_sec),
  // base elsewhere. One-shot, not cyclic.
  double flash_start_sec = 10.0;
  double flash_duration_sec = 5.0;
  double flash_multiplier = 4.0;
};

// Instantaneous offered rate (requests/s) of `config` at time t. The
// harness uses this to feed the SLO governor the next period's offered
// load without owning a generator.
double ArrivalRateAt(const ArrivalConfig& config, double t);

class ArrivalGenerator {
 public:
  ArrivalGenerator(const ArrivalConfig& config, Rng rng);

  // Absolute time (seconds since t=0) of the next arrival; strictly
  // increasing across calls.
  double Next();

  // Instantaneous offered rate (requests/s) at time t.
  double RateAt(double t) const;

  // Maximum of RateAt over all t — the thinning envelope.
  double PeakRate() const;

 private:
  ArrivalConfig config_;
  Rng rng_;
  double cycle_sec_ = 0.0;  // Total kBurst cycle length (0 = constant).
  double t_ = 0.0;
};

}  // namespace copart

#endif  // COPART_SERVE_ARRIVAL_H_
