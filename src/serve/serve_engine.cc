#include "serve/serve_engine.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace copart {

LcServer::LcServer(const LcServerConfig& config, const Rng& rng)
    : config_(config),
      arrival_rng_(rng.Fork(0)),
      service_rng_(rng.Fork(1)),
      generator_(config.arrival, arrival_rng_) {
  CHECK_GT(config_.instructions_per_request, 0.0);
  CHECK_GT(config_.queue_capacity, 0u);
  queue_.slots.assign(config_.queue_capacity, 0.0);
}

void LcServer::StartService() {
  remaining_instructions_ =
      config_.exponential_service
          ? service_rng_.NextExponential(config_.instructions_per_request)
          : config_.instructions_per_request;
  // An exponential draw can be arbitrarily small but never helpfully zero;
  // floor it so a completion always advances time.
  remaining_instructions_ = std::max(remaining_instructions_, 1.0);
  in_service_ = true;
}

void LcServer::RecordCompletion(double completion_time) {
  const double latency = completion_time - queue_.front();
  epoch_sketch_.Record(latency);
  total_sketch_.Record(latency);
  queue_.pop();
  ++total_completions_;
}

EpochServeStats LcServer::AdvanceEpoch(double dt, double ips_capability) {
  CHECK_GT(dt, 0.0);
  const double end = now_ + dt;
  const double mu = std::max(ips_capability, 0.0);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  EpochServeStats stats;
  epoch_sketch_.Clear();

  double cursor = now_;  // Time up to which the in-service request has run.
  for (;;) {
    if (!have_pending_) {
      pending_arrival_ = generator_.Next();
      have_pending_ = true;
    }
    const double completion =
        in_service_ && mu > 0.0 ? cursor + remaining_instructions_ / mu
                                : kInf;
    const double event = std::min(pending_arrival_, completion);
    if (event >= end) {
      // Epoch boundary: progress the in-service request to `end` and stop.
      if (in_service_ && mu > 0.0) {
        remaining_instructions_ =
            std::max(0.0, remaining_instructions_ - (end - cursor) * mu);
      }
      break;
    }
    if (completion <= pending_arrival_) {
      RecordCompletion(completion);
      ++stats.completions;
      cursor = completion;
      if (queue_.size_ > 0) {
        StartService();
      } else {
        in_service_ = false;
        remaining_instructions_ = 0.0;
      }
    } else {
      const double t = pending_arrival_;
      have_pending_ = false;
      if (in_service_ && mu > 0.0) {
        remaining_instructions_ =
            std::max(0.0, remaining_instructions_ - (t - cursor) * mu);
      }
      cursor = t;
      ++stats.arrivals;
      ++total_arrivals_;
      if (queue_.full()) {
        ++stats.drops;
        ++total_drops_;
      } else {
        queue_.push(t);
        if (!in_service_) {
          StartService();
        }
      }
    }
  }

  now_ = end;
  stats.queue_depth_end = queue_.size_;
  stats.offered_rps = static_cast<double>(stats.arrivals) / dt;
  if (epoch_sketch_.count() > 0) {
    stats.p50_ms = 1e3 * epoch_sketch_.Quantile(0.50);
    stats.p95_ms = 1e3 * epoch_sketch_.Quantile(0.95);
    stats.p99_ms = 1e3 * epoch_sketch_.Quantile(0.99);
  }
  return stats;
}

}  // namespace copart
