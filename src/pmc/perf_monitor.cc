#include "pmc/perf_monitor.h"

#include "common/logging.h"

namespace copart {

PerfMonitor::PerfMonitor(const SimulatedMachine* machine)
    : machine_(machine) {
  CHECK_NE(machine, nullptr);
}

void PerfMonitor::Attach(AppId app) {
  CHECK(machine_->AppExists(app));
  baselines_[app] = Baseline{machine_->now(), machine_->Counters(app)};
}

void PerfMonitor::Detach(AppId app) { baselines_.erase(app); }

bool PerfMonitor::Attached(AppId app) const {
  return baselines_.contains(app);
}

PmcSample PerfMonitor::Sample(AppId app) {
  auto it = baselines_.find(app);
  CHECK(it != baselines_.end()) << "Sample() on unattached app";
  const AppCounters& current = machine_->Counters(app);
  const Baseline& baseline = it->second;

  PmcSample sample;
  sample.interval_sec = machine_->now() - baseline.time;
  sample.instructions = current.instructions - baseline.counters.instructions;
  sample.llc_accesses = current.llc_accesses - baseline.counters.llc_accesses;
  sample.llc_misses = current.llc_misses - baseline.counters.llc_misses;

  it->second = Baseline{machine_->now(), current};
  return sample;
}

}  // namespace copart
