#include "pmc/perf_monitor.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace copart {
namespace {

// Disjoint per-app address spaces for the stratified sensing traces (same
// discipline as the MRC validation tests: distinct bases or traces alias).
uint64_t SensingAddressBase(AppId app) {
  return (static_cast<uint64_t>(app.value()) + 1) << 44;
}

}  // namespace

PerfMonitor::PerfMonitor(const SimulatedMachine* machine)
    : machine_(machine),
      injector_(machine != nullptr ? machine->config().fault_injector
                                   : nullptr) {
  CHECK_NE(machine, nullptr);
}

void PerfMonitor::Attach(AppId app) {
  CHECK(machine_->AppExists(app));
  baselines_[app] = Baseline{machine_->now(), machine_->Counters(app)};
  if (sensing_.enabled) {
    EnsureSensingState(app);
  }
}

void PerfMonitor::Detach(AppId app) {
  baselines_.erase(app);
  sensing_states_.erase(app);
}

bool PerfMonitor::Attached(AppId app) const {
  return baselines_.contains(app);
}

PmcSample PerfMonitor::SampleFrom(AppId app, const Baseline& baseline) const {
  const AppCounters& current = machine_->Counters(app);
  PmcSample sample;
  sample.interval_sec = machine_->now() - baseline.time;
  sample.instructions = current.instructions - baseline.counters.instructions;
  sample.llc_accesses = current.llc_accesses - baseline.counters.llc_accesses;
  sample.llc_misses = current.llc_misses - baseline.counters.llc_misses;
  return sample;
}

PmcSample PerfMonitor::Sample(AppId app) {
  auto it = baselines_.find(app);
  CHECK(it != baselines_.end()) << "Sample() on unattached app";
  PmcSample sample = SampleFrom(app, it->second);
  it->second = Baseline{machine_->now(), machine_->Counters(app)};
  if (sensing_.enabled) {
    ApplySensing(app, sample);
  }
  return sample;
}

Result<PmcSample> PerfMonitor::TrySample(AppId app) {
  ++try_samples_;
  auto it = baselines_.find(app);
  if (it == baselines_.end()) {
    ++try_sample_failures_;
    return FailedPreconditionError("TrySample() on unattached app");
  }
  if (injector_ != nullptr) {
    if (injector_->ShouldFail(fault_points::kPmcDropped)) {
      ++try_sample_failures_;
      return UnavailableError("injected: PMC read dropped");
    }
    if (injector_->ShouldFail(fault_points::kPmcStale)) {
      // The raw counters were not re-read: zero deltas over a real interval.
      // The baseline stays put so the next good read covers the whole gap.
      PmcSample stale;
      stale.interval_sec = machine_->now() - it->second.time;
      return stale;
    }
    if (injector_->ShouldFail(fault_points::kPmcSaturated)) {
      PmcSample garbage = SampleFrom(app, it->second);
      garbage.instructions = kSaturatedCounterValue;
      it->second = Baseline{machine_->now(), machine_->Counters(app)};
      return garbage;
    }
  }
  PmcSample sample = SampleFrom(app, it->second);
  it->second = Baseline{machine_->now(), machine_->Counters(app)};
  if (sensing_.enabled) {
    ApplySensing(app, sample);
  }
  return sample;
}

void PerfMonitor::ConfigureSensing(const PmcSensingParams& params) {
  CHECK_GE(params.noise_sigma, 0.0);
  CHECK_GE(params.interval_jitter, 0.0);
  CHECK_LT(params.interval_jitter, 1.0);
  CHECK_GE(params.stale_probability, 0.0);
  CHECK_LE(params.stale_probability, 1.0);
  CHECK_GT(params.mrc_sampling_rate, 0.0);
  CHECK_LE(params.mrc_sampling_rate, 1.0);
  CHECK_GT(params.target_error_bound, 0.0);
  CHECK_LE(params.target_error_bound, params.max_error_bound)
      << "feed would stop before the estimator is ever trusted";
  sensing_ = params;
  sensing_states_.clear();
  if (!sensing_.enabled) {
    return;
  }
  for (const auto& [app, baseline] : baselines_) {
    EnsureSensingState(app);
  }
}

const OnlineMrcEstimator* PerfMonitor::estimator(AppId app) const {
  const auto it = sensing_states_.find(app);
  return it == sensing_states_.end() ? nullptr : it->second.estimator.get();
}

void PerfMonitor::EnsureSensingState(AppId app) {
  if (sensing_states_.contains(app)) {
    return;  // Re-Attach: keep the warm directory and rng streams.
  }
  // Pinned per-app fork so attach order never shifts another app's stream.
  const Rng base = Rng(sensing_.seed).Fork(app.value());
  auto [it, inserted] = sensing_states_.try_emplace(app, base, base.Fork(0));
  SensingState& state = it->second;
  if (sensing_.estimate_miss_ratio) {
    OnlineMrcConfig config;
    config.geometry = machine_->config().llc;
    config.sampling_rate = sensing_.mrc_sampling_rate;
    config.seed = sensing_.seed ^
                  (0x9E3779B97F4A7C15ULL * (app.value() + 1));
    state.estimator = std::make_unique<OnlineMrcEstimator>(config);
    const WorkloadDescriptor& d = machine_->Descriptor(app);
    state.has_phases = !d.phases.empty();
    state.phase_index =
        d.PhaseIndexAt(machine_->now() - machine_->AppLaunchTime(app));
    RebuildSensingTrace(app, state, state.phase_index);
  }
}

void PerfMonitor::RebuildSensingTrace(AppId app, SensingState& state,
                                      size_t phase_index) {
  const WorkloadDescriptor& d = machine_->Descriptor(app);
  const WorkloadPhase phase =
      d.phases.empty() ? WorkloadPhase{} : d.phases[phase_index];
  const uint32_t line_bytes = machine_->config().llc.line_bytes;

  // Stratified SHARDS pre-sampling: scale every working-set component down
  // by the sampling rate. Uniform draws over the scaled set are
  // distribution-equivalent (per sampled line) to admission-filtering the
  // full-rate stream, so the ATD sees unbiased per-set statistics at a
  // fraction of the generation cost.
  std::vector<ReuseComponent> scaled;
  scaled.reserve(d.reuse_profile.components().size());
  double component_weight = 0.0;
  for (const ReuseComponent& c : d.reuse_profile.components()) {
    component_weight += c.weight;
    ReuseComponent sc = c;
    sc.working_set_bytes = std::max<uint64_t>(
        line_bytes,
        static_cast<uint64_t>(std::llround(
            static_cast<double>(c.working_set_bytes) *
            sensing_.mrc_sampling_rate)));
    scaled.push_back(sc);
  }
  // Mirror SimulatedMachine::EffectiveParamsFor: phase streaming scaling
  // steals from / returns to the residual weight, never exceeding 1.
  double streaming = d.reuse_profile.streaming_weight();
  if (phase.streaming_scale != 1.0) {
    streaming = std::min(streaming * phase.streaming_scale,
                         1.0 - component_weight);
  }
  // Trace stream pinned per (app, phase): re-entering a phase replays the
  // same draws regardless of how many samples other phases consumed.
  state.trace = std::make_unique<MixtureTraceGenerator>(
      ReuseProfile(scaled, streaming), line_bytes,
      state.base.Fork(1 + phase_index), SensingAddressBase(app));
}

void PerfMonitor::ApplySensing(AppId app, PmcSample& sample) {
  auto it = sensing_states_.find(app);
  if (it == sensing_states_.end()) {
    return;  // Attached before sensing was configured for this app.
  }
  SensingState& state = it->second;
  ++sensed_samples_;

  if (state.estimator != nullptr) {
    // Track workload phases: on a phase change the resident directory tags
    // are still plausible but the reference statistics are not — drop the
    // counters, keep the tags warm, and start re-converging.
    if (state.has_phases) {
      const size_t phase_index = machine_->Descriptor(app).PhaseIndexAt(
          machine_->now() - machine_->AppLaunchTime(app));
      if (phase_index != state.phase_index) {
        state.phase_index = phase_index;
        RebuildSensingTrace(app, state, phase_index);
        state.estimator->ResetCounters();
        state.feed_done = false;
      }
    }
    // Feed until the error bound reaches the target, then stop: the
    // synthetic sub-population is stationary within a phase, so further
    // samples carry no information but real hot-path cost. A phase change
    // resets the counters and resumes the feed.
    if (!state.feed_done) {
      for (uint32_t i = 0; i < sensing_.estimator_accesses_per_sample; ++i) {
        state.estimator->RecordSampled(state.trace->Next());
      }
      state.feed_done =
          state.estimator->Converged(sensing_.target_error_bound);
    }
    if (state.estimator->Converged(sensing_.max_error_bound)) {
      const uint32_t ways =
          machine_->ClosWayMask(machine_->AppClos(app)).CountWays();
      sample.llc_misses =
          sample.llc_accesses * state.estimator->MissRatioAtWays(ways);
    } else {
      // Cold / re-converging directory: report the raw counter value
      // rather than a garbage estimate.
      ++estimator_fallbacks_;
    }
  }

  if (state.has_last_reported &&
      state.noise.NextBool(sensing_.stale_probability)) {
    ++stale_reports_;
    sample = state.last_reported;
    return;
  }
  if (sensing_.noise_sigma > 0.0) {
    sample.instructions *=
        std::exp(sensing_.noise_sigma * state.noise.NextGaussian());
    sample.llc_accesses *=
        std::exp(sensing_.noise_sigma * state.noise.NextGaussian());
    sample.llc_misses *=
        std::exp(sensing_.noise_sigma * state.noise.NextGaussian());
  }
  if (sensing_.interval_jitter > 0.0) {
    sample.interval_sec *=
        1.0 + sensing_.interval_jitter * (2.0 * state.noise.NextDouble() - 1.0);
  }
  state.last_reported = sample;
  state.has_last_reported = true;
}

}  // namespace copart
