#include "pmc/perf_monitor.h"

#include "common/fault_injector.h"
#include "common/logging.h"

namespace copart {

PerfMonitor::PerfMonitor(const SimulatedMachine* machine)
    : machine_(machine),
      injector_(machine != nullptr ? machine->config().fault_injector
                                   : nullptr) {
  CHECK_NE(machine, nullptr);
}

void PerfMonitor::Attach(AppId app) {
  CHECK(machine_->AppExists(app));
  baselines_[app] = Baseline{machine_->now(), machine_->Counters(app)};
}

void PerfMonitor::Detach(AppId app) { baselines_.erase(app); }

bool PerfMonitor::Attached(AppId app) const {
  return baselines_.contains(app);
}

PmcSample PerfMonitor::SampleFrom(AppId app, const Baseline& baseline) const {
  const AppCounters& current = machine_->Counters(app);
  PmcSample sample;
  sample.interval_sec = machine_->now() - baseline.time;
  sample.instructions = current.instructions - baseline.counters.instructions;
  sample.llc_accesses = current.llc_accesses - baseline.counters.llc_accesses;
  sample.llc_misses = current.llc_misses - baseline.counters.llc_misses;
  return sample;
}

PmcSample PerfMonitor::Sample(AppId app) {
  auto it = baselines_.find(app);
  CHECK(it != baselines_.end()) << "Sample() on unattached app";
  PmcSample sample = SampleFrom(app, it->second);
  it->second = Baseline{machine_->now(), machine_->Counters(app)};
  return sample;
}

Result<PmcSample> PerfMonitor::TrySample(AppId app) {
  ++try_samples_;
  auto it = baselines_.find(app);
  if (it == baselines_.end()) {
    ++try_sample_failures_;
    return FailedPreconditionError("TrySample() on unattached app");
  }
  if (injector_ != nullptr) {
    if (injector_->ShouldFail(fault_points::kPmcDropped)) {
      ++try_sample_failures_;
      return UnavailableError("injected: PMC read dropped");
    }
    if (injector_->ShouldFail(fault_points::kPmcStale)) {
      // The raw counters were not re-read: zero deltas over a real interval.
      // The baseline stays put so the next good read covers the whole gap.
      PmcSample stale;
      stale.interval_sec = machine_->now() - it->second.time;
      return stale;
    }
    if (injector_->ShouldFail(fault_points::kPmcSaturated)) {
      PmcSample garbage = SampleFrom(app, it->second);
      garbage.instructions = kSaturatedCounterValue;
      it->second = Baseline{machine_->now(), machine_->Counters(app)};
      return garbage;
    }
  }
  PmcSample sample = SampleFrom(app, it->second);
  it->second = Baseline{machine_->now(), machine_->Counters(app)};
  return sample;
}

}  // namespace copart
