// PAPI-like sampling of performance monitoring counters.
//
// The paper's prototype reads three PMCs per application each control period
// (dynamically executed instructions, LLC accesses, LLC misses; §3.2) and
// derives rates from consecutive samples. PerfMonitor reproduces that
// discipline against SimulatedMachine counters: Sample() returns the deltas
// since the previous Sample() for the same app, plus derived rates
// (IPS, accesses/s, misses/s, miss ratio).
//
// Like PAPI on real hardware, the sampling path can misbehave:
// multiplexed/contended counters drop reads, a missed read window yields a
// stale (unchanged) raw counter, and 48-bit counters can saturate or wrap.
// TrySample() models all three under fault injection
// (common/fault_injector.h); the hardened resource manager samples through
// it and quarantines apps whose counters go bad. Sample() is the legacy
// infallible path (no injection) kept for policies and tests that assume a
// perfect substrate.
#ifndef COPART_PMC_PERF_MONITOR_H_
#define COPART_PMC_PERF_MONITOR_H_

#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "machine/app_id.h"
#include "machine/simulated_machine.h"

namespace copart {

namespace fault_points {
// The period's read is lost entirely (kUnavailable).
inline constexpr std::string_view kPmcDropped = "pmc.sample.dropped";
// The raw counters did not advance since the last read: the sample reports
// zero deltas over a real interval (IPS == 0 — impossible for a live app).
inline constexpr std::string_view kPmcStale = "pmc.sample.stale";
// A counter saturates: the instruction delta pegs at an absurd value.
inline constexpr std::string_view kPmcSaturated = "pmc.sample.saturated";
}  // namespace fault_points

// Rates over one sampling interval.
struct PmcSample {
  double interval_sec = 0.0;
  double instructions = 0.0;
  double llc_accesses = 0.0;
  double llc_misses = 0.0;

  double Ips() const { return interval_sec > 0 ? instructions / interval_sec : 0; }
  double LlcAccessesPerSec() const {
    return interval_sec > 0 ? llc_accesses / interval_sec : 0;
  }
  double LlcMissesPerSec() const {
    return interval_sec > 0 ? llc_misses / interval_sec : 0;
  }
  double LlcMissRatio() const {
    return llc_accesses > 0 ? llc_misses / llc_accesses : 0;
  }
};

// The counter value a saturated read reports (far beyond any plausible
// per-period instruction delta; 16 cores * 2.1 GHz * 0.5 s ~ 1.7e10).
inline constexpr double kSaturatedCounterValue = 1e15;

class PerfMonitor {
 public:
  explicit PerfMonitor(const SimulatedMachine* machine);

  // Starts (or restarts) tracking `app` from the current counter values.
  void Attach(AppId app);
  void Detach(AppId app);
  bool Attached(AppId app) const;

  // Returns counter deltas since the last read for this app and advances
  // the baseline. CHECK-fails if the app is not attached. Never subject to
  // fault injection.
  PmcSample Sample(AppId app);

  // Fallible sampling for hardened callers: kFailedPrecondition if the app
  // is not attached; under fault injection the read can be dropped
  // (kUnavailable), come back stale (zero deltas; the baseline is NOT
  // advanced, so the next good read covers the whole gap, as with a real
  // unread counter), or come back saturated (absurd instruction delta; the
  // baseline advances — the read happened, the value is garbage).
  Result<PmcSample> TrySample(AppId app);

  // Telemetry for the hardened path: TrySample calls and how many returned
  // an error status. Stale/saturated reads return OK with garbage values —
  // the manager's quarantine policy judges those, not the monitor.
  uint64_t try_samples() const { return try_samples_; }
  uint64_t try_sample_failures() const { return try_sample_failures_; }

 private:
  struct Baseline {
    double time = 0.0;
    AppCounters counters;
  };

  PmcSample SampleFrom(AppId app, const Baseline& baseline) const;

  const SimulatedMachine* machine_;  // Not owned.
  FaultInjector* injector_;          // Not owned; null = no injection.
  std::unordered_map<AppId, Baseline> baselines_;
  uint64_t try_samples_ = 0;
  uint64_t try_sample_failures_ = 0;
};

}  // namespace copart

#endif  // COPART_PMC_PERF_MONITOR_H_
