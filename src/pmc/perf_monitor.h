// PAPI-like sampling of performance monitoring counters.
//
// The paper's prototype reads three PMCs per application each control period
// (dynamically executed instructions, LLC accesses, LLC misses; §3.2) and
// derives rates from consecutive samples. PerfMonitor reproduces that
// discipline against SimulatedMachine counters: Sample() returns the deltas
// since the previous Sample() for the same app, plus derived rates
// (IPS, accesses/s, misses/s, miss ratio).
//
// Like PAPI on real hardware, the sampling path can misbehave:
// multiplexed/contended counters drop reads, a missed read window yields a
// stale (unchanged) raw counter, and 48-bit counters can saturate or wrap.
// TrySample() models all three under fault injection
// (common/fault_injector.h); the hardened resource manager samples through
// it and quarantines apps whose counters go bad. Sample() is the legacy
// infallible path (no injection) kept for policies and tests that assume a
// perfect substrate.
//
// Beyond injected faults, ConfigureSensing() turns on a *realistic sensing*
// model for every sample the monitor reports: multiplicative lognormal
// counter noise, read-interval jitter, occasional stale repeats, and —
// most importantly — the option to derive the reported LLC miss count from
// a SHARDS-sampled online MRC estimator (cache/online_mrc.h) instead of the
// machine's exact model counters, the way a production partitioner that
// shadows a sampled tag directory would. Every stochastic draw comes from a
// per-app Rng forked from the sensing seed, so runs are bit-stable per seed
// and independent of attach order.
#ifndef COPART_PMC_PERF_MONITOR_H_
#define COPART_PMC_PERF_MONITOR_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>

#include "cache/online_mrc.h"
#include "common/rng.h"
#include "common/status.h"
#include "machine/app_id.h"
#include "machine/simulated_machine.h"
#include "trace/trace_generator.h"

namespace copart {

namespace fault_points {
// The period's read is lost entirely (kUnavailable).
inline constexpr std::string_view kPmcDropped = "pmc.sample.dropped";
// The raw counters did not advance since the last read: the sample reports
// zero deltas over a real interval (IPS == 0 — impossible for a live app).
inline constexpr std::string_view kPmcStale = "pmc.sample.stale";
// A counter saturates: the instruction delta pegs at an absurd value.
inline constexpr std::string_view kPmcSaturated = "pmc.sample.saturated";
}  // namespace fault_points

// Rates over one sampling interval.
struct PmcSample {
  double interval_sec = 0.0;
  double instructions = 0.0;
  double llc_accesses = 0.0;
  double llc_misses = 0.0;

  double Ips() const { return interval_sec > 0 ? instructions / interval_sec : 0; }
  double LlcAccessesPerSec() const {
    return interval_sec > 0 ? llc_accesses / interval_sec : 0;
  }
  double LlcMissesPerSec() const {
    return interval_sec > 0 ? llc_misses / interval_sec : 0;
  }
  double LlcMissRatio() const {
    return llc_accesses > 0 ? llc_misses / llc_accesses : 0;
  }
};

// The counter value a saturated read reports (far beyond any plausible
// per-period instruction delta; 16 cores * 2.1 GHz * 0.5 s ~ 1.7e10).
inline constexpr double kSaturatedCounterValue = 1e15;

// Realistic-sensing knobs (ConfigureSensing). Defaults model a lightly
// noisy PMU plus the default 1/64 SHARDS rate; `enabled = false` keeps the
// monitor exact and adds zero cost to the sampling hot path.
struct PmcSensingParams {
  bool enabled = false;

  // Multiplicative lognormal noise applied independently to each reported
  // counter delta: value *= exp(noise_sigma * gaussian).
  double noise_sigma = 0.02;
  // The reported interval wobbles by up to +-interval_jitter (uniform),
  // modeling read-timing skid relative to the nominal control period.
  double interval_jitter = 0.02;
  // Probability a read silently repeats the previous reported sample
  // (counters not re-latched in time).
  double stale_probability = 0.01;

  // When set, the reported LLC miss delta is reconstructed from a per-app
  // OnlineMrcEstimator queried at the app's current CLOS way count instead
  // of copied from the exact machine counters. Until the estimator's
  // ErrorBound() drops under `max_error_bound` the raw counter value is
  // used (counted in estimator_fallbacks()), so early classification never
  // runs on a cold directory.
  bool estimate_miss_ratio = true;
  double mrc_sampling_rate = 1.0 / 64.0;
  // Sampled (post-admission) accesses synthesized into the estimator per
  // Sample/TrySample call — the stratified pre-sampling budget. At the
  // default rate this stands in for ~accesses_per_sample/rate real
  // accesses of stream.
  uint32_t estimator_accesses_per_sample = 256;
  double max_error_bound = 0.0625;  // ~256 samples before trusting the ATD.
  // Feed cut-off: the synthetic sub-population is stationary within a
  // workload phase, so once the error bound reaches this target further
  // samples carry no information — the feed stops (and restarts from the
  // warm directory at the next phase change). This is what keeps the
  // steady-state estimator cost off the epoch hot path
  // (bench_sim_throughput's managed_sensing point gates it under 10%).
  double target_error_bound = 0.01;  // ~10k samples.

  // Root of the per-app sensing streams: app `a` draws from
  // Rng(seed).Fork(a), so attach order never shifts another app's draws.
  uint64_t seed = 0x5E2517;
};

class PerfMonitor {
 public:
  explicit PerfMonitor(const SimulatedMachine* machine);

  // Starts (or restarts) tracking `app` from the current counter values.
  void Attach(AppId app);
  void Detach(AppId app);
  bool Attached(AppId app) const;

  // Returns counter deltas since the last read for this app and advances
  // the baseline. CHECK-fails if the app is not attached. Never subject to
  // fault injection.
  PmcSample Sample(AppId app);

  // Fallible sampling for hardened callers: kFailedPrecondition if the app
  // is not attached; under fault injection the read can be dropped
  // (kUnavailable), come back stale (zero deltas; the baseline is NOT
  // advanced, so the next good read covers the whole gap, as with a real
  // unread counter), or come back saturated (absurd instruction delta; the
  // baseline advances — the read happened, the value is garbage).
  Result<PmcSample> TrySample(AppId app);

  // Telemetry for the hardened path: TrySample calls and how many returned
  // an error status. Stale/saturated reads return OK with garbage values —
  // the manager's quarantine policy judges those, not the monitor.
  uint64_t try_samples() const { return try_samples_; }
  uint64_t try_sample_failures() const { return try_sample_failures_; }

  // --- Realistic sensing ---

  // Installs (or replaces) the sensing model. Per-app sensing state is
  // rebuilt for every currently attached app; estimator directories start
  // cold. `params.enabled = false` restores exact reporting.
  void ConfigureSensing(const PmcSensingParams& params);
  const PmcSensingParams& sensing_params() const { return sensing_; }

  // Sensing telemetry: samples that went through the sensing transform,
  // how many reported the raw counter miss value because the estimator had
  // not converged, and how many were stale repeats.
  uint64_t sensed_samples() const { return sensed_samples_; }
  uint64_t estimator_fallbacks() const { return estimator_fallbacks_; }
  uint64_t stale_reports() const { return stale_reports_; }

  // The app's online MRC estimator, or nullptr when sensing is off /
  // estimation disabled / app unattached. Exposed for the accuracy harness
  // and the known-answer tests.
  const OnlineMrcEstimator* estimator(AppId app) const;

 private:
  struct Baseline {
    double time = 0.0;
    AppCounters counters;
  };

  // Per-app sensing channel. `base` is the pinned fork root (trace streams
  // derive from it per phase); `noise` advances with every sensed sample.
  struct SensingState {
    SensingState(Rng base_rng, Rng noise_rng)
        : base(base_rng), noise(noise_rng) {}
    Rng base;
    Rng noise;
    size_t phase_index = 0;
    // Cached off the descriptor at attach: phase-less apps skip the per-
    // sample phase lookup entirely.
    bool has_phases = false;
    // Set once the estimator reaches target_error_bound for the current
    // phase; the feed stops until a phase change clears it.
    bool feed_done = false;
    std::unique_ptr<MixtureTraceGenerator> trace;
    std::unique_ptr<OnlineMrcEstimator> estimator;
    PmcSample last_reported;
    bool has_last_reported = false;
  };

  PmcSample SampleFrom(AppId app, const Baseline& baseline) const;

  // Creates the app's sensing channel (idempotent: re-Attach keeps the warm
  // estimator directory).
  void EnsureSensingState(AppId app);
  // Rebuilds the stratified trace generator for the app's current workload
  // phase (mirrors SimulatedMachine::EffectiveParamsFor streaming scaling).
  void RebuildSensingTrace(AppId app, SensingState& state,
                           size_t phase_index);
  // The sensing transform: phase tracking, estimator feed + miss
  // substitution, stale repeat, counter noise, interval jitter.
  void ApplySensing(AppId app, PmcSample& sample);

  const SimulatedMachine* machine_;  // Not owned.
  FaultInjector* injector_;          // Not owned; null = no injection.
  std::unordered_map<AppId, Baseline> baselines_;
  uint64_t try_samples_ = 0;
  uint64_t try_sample_failures_ = 0;

  PmcSensingParams sensing_;
  std::unordered_map<AppId, SensingState> sensing_states_;
  uint64_t sensed_samples_ = 0;
  uint64_t estimator_fallbacks_ = 0;
  uint64_t stale_reports_ = 0;
};

}  // namespace copart

#endif  // COPART_PMC_PERF_MONITOR_H_
