// PAPI-like sampling of performance monitoring counters.
//
// The paper's prototype reads three PMCs per application each control period
// (dynamically executed instructions, LLC accesses, LLC misses; §3.2) and
// derives rates from consecutive samples. PerfMonitor reproduces that
// discipline against SimulatedMachine counters: Sample() returns the deltas
// since the previous Sample() for the same app, plus derived rates
// (IPS, accesses/s, misses/s, miss ratio).
#ifndef COPART_PMC_PERF_MONITOR_H_
#define COPART_PMC_PERF_MONITOR_H_

#include <unordered_map>

#include "machine/app_id.h"
#include "machine/simulated_machine.h"

namespace copart {

// Rates over one sampling interval.
struct PmcSample {
  double interval_sec = 0.0;
  double instructions = 0.0;
  double llc_accesses = 0.0;
  double llc_misses = 0.0;

  double Ips() const { return interval_sec > 0 ? instructions / interval_sec : 0; }
  double LlcAccessesPerSec() const {
    return interval_sec > 0 ? llc_accesses / interval_sec : 0;
  }
  double LlcMissesPerSec() const {
    return interval_sec > 0 ? llc_misses / interval_sec : 0;
  }
  double LlcMissRatio() const {
    return llc_accesses > 0 ? llc_misses / llc_accesses : 0;
  }
};

class PerfMonitor {
 public:
  explicit PerfMonitor(const SimulatedMachine* machine);

  // Starts (or restarts) tracking `app` from the current counter values.
  void Attach(AppId app);
  void Detach(AppId app);
  bool Attached(AppId app) const;

  // Returns counter deltas since the last Sample()/Attach() for this app
  // and advances the baseline. CHECK-fails if the app is not attached.
  PmcSample Sample(AppId app);

 private:
  struct Baseline {
    double time = 0.0;
    AppCounters counters;
  };

  const SimulatedMachine* machine_;  // Not owned.
  std::unordered_map<AppId, Baseline> baselines_;
};

}  // namespace copart

#endif  // COPART_PMC_PERF_MONITOR_H_
