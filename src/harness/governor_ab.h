// SLO-governor A/B harness (DESIGN.md §15).
//
// Runs every registered SLO governor (slo/slo_governor.h: the extracted
// threshold walk plus the learned MPC and contextual-bandit governors)
// over the same serving scenarios and reports the headline serving
// metrics side by side: run-level p95, the SLO-violation rate, the epoch
// at which violations cease ("convergence"), the mean LC slice width (the
// cost the governor pays for its latency), and batch unfairness.
//
// Scenarios are the four arrival/workload shapes the paper's §6.3 case
// study generalizes to:
//   burst        — the §6.3 load step (Fig. 15 compressed).
//   diurnal      — sinusoidal load swing over two periods.
//   flash-crowd  — a one-shot step to ~2.2x for 8 s (serve/arrival.h's
//                  kFlashCrowd shape): the queue-drain transient the
//                  steady-state M/M/1 model cannot see.
//   phase-shift  — the correlated MemcachedPhased + batch pair
//                  (workload/workload.h): the LC hot set rotates every
//                  12 s, so the phase-blind analytic capability model
//                  over-promises exactly when the batch side surges too.
//
// The learned governors exist to win the last two: threshold replans from
// the same analytic surface every period and re-violates every rotation /
// drain, while MPC's corrections and the bandit's per-phase arms persist.
// Cells fan out across ParallelConfig threads under the usual determinism
// contract (each cell depends only on its index; reduction is serial), so
// the serialized result is bit-identical for every --threads value —
// pinned by tests/harness_governor_ab_golden_test.cc.
#ifndef COPART_HARNESS_GOVERNOR_AB_H_
#define COPART_HARNESS_GOVERNOR_AB_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "harness/serve.h"

namespace copart {

struct GovernorAbScenario {
  std::string name;
  // mode/slo.governor are overwritten per cell; everything else is the
  // scenario identity (workloads, arrival trace, seed, duration).
  ServeScenarioConfig config;
};

struct GovernorAbConfig {
  // Registry names to compare; empty = every registered governor.
  std::vector<std::string> governors;
  ParallelConfig parallel;
};

struct GovernorAbCell {
  std::string scenario;
  std::string governor;
  double p95_ms = 0.0;               // Run-level LC p95.
  double slo_violation_rate = 0.0;   // Fraction of violating epochs.
  // Control periods until SLO violations cease: index of the last
  // violating period + 1 (0 = the governor never violated). Lower is
  // faster convergence to a sustainably sized slice.
  uint64_t convergence_epochs = 0;
  double mean_lc_ways = 0.0;         // Average slice width (the cost side).
  double batch_unfairness = 0.0;     // Whole-run Eq. 1/Eq. 2 unfairness.
  uint64_t slo_resizes = 0;
};

struct GovernorAbResult {
  std::vector<GovernorAbCell> cells;  // Scenario-major, governor-minor.
  SweepStats stats;
};

// The four standard scenarios described above.
std::vector<GovernorAbScenario> GovernorAbScenarios();

// Runs |scenarios| x |governors| serve cells across config.parallel.
GovernorAbResult RunGovernorAb(const GovernorAbConfig& config);

// Full-precision (%.17g) serialization, the golden/determinism surface.
std::string GovernorAbToJson(const GovernorAbResult& result);

// One row per cell, for plotting.
Status WriteGovernorAbCsv(const GovernorAbResult& result,
                          const std::string& path);

// Aligned table plus verdict lines for the two learned-governor scenarios.
void PrintGovernorAbTable(const GovernorAbResult& result,
                          std::FILE* out = stdout);

}  // namespace copart

#endif  // COPART_HARNESS_GOVERNOR_AB_H_
