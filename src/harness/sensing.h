// Sensing A/B harness: exact vs estimated vs estimated+noisy PMCs.
//
// Runs the SAME consolidation (mix + one phased re-convergence probe app)
// under three PerfMonitor configurations and compares what the controller
// *decided* each period:
//
//   kExact          — the monitor reports the machine's model counters
//                     verbatim (the repo's historical behaviour).
//   kEstimated      — the LLC miss counter is reconstructed from the
//                     SHARDS-sampled online MRC estimator
//                     (cache/online_mrc.h); no counter noise.
//   kEstimatedNoisy — estimation plus lognormal counter noise, interval
//                     jitter and stale repeats (pmc/perf_monitor.h).
//
// Per control period each cell records the classifier FSM states the
// matcher consumed (per app, LLC and MBA) and the manager phase. The
// comparison then scores, against the exact cell:
//
//   agreement          — fraction of (period, app, resource) classification
//                        decisions identical to the exact baseline.
//   epochs_to_converge — first control period spent in the idle phase
//                        (adaptation settled).
//   reconverge_epochs  — periods from the re-adaptation triggered by the
//                        probe app's phase flip (at half the run) back to
//                        idle; -1 if the flip never re-triggered.
//
// The three cells are independent and fan out over ParallelFor, so the
// whole comparison is byte-identical for any --threads (the determinism
// suite pins this); copartctl's `sensing` subcommand prints the table.
#ifndef COPART_HARNESS_SENSING_H_
#define COPART_HARNESS_SENSING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/classifiers.h"
#include "core/copart_params.h"
#include "core/resource_manager.h"
#include "core/system_state.h"
#include "harness/mix.h"
#include "machine/machine_config.h"
#include "pmc/perf_monitor.h"

namespace copart {

enum class SensingMode { kExact, kEstimated, kEstimatedNoisy };
inline constexpr size_t kNumSensingModes = 3;

const char* SensingModeName(SensingMode mode);

struct SensingConfig {
  MachineConfig machine;
  ResourcePool pool{.first_way = 0, .num_ways = 11, .max_mba_percent = 100};
  MixFamily family = MixFamily::kHighLlc;
  // Mix apps (the phased re-convergence probe is appended on top, so the
  // machine hosts app_count + 1 apps).
  size_t app_count = 3;
  double duration_sec = 50.0;
  double control_period_sec = 0.5;
  ResourceManagerParams manager;
  // Template for the noisy cell; `enabled` / `estimate_miss_ratio` are
  // forced per mode. The estimated cell uses the same estimator knobs with
  // all noise zeroed.
  PmcSensingParams sensing;
  ParallelConfig parallel;
};

// One cell's per-period decision trace plus end-of-run telemetry.
struct SensingCellResult {
  SensingMode mode = SensingMode::kExact;
  // [period][app] classifier states fed to the matcher.
  std::vector<std::vector<ResourceClass>> llc_classes;
  std::vector<std::vector<ResourceClass>> mba_classes;
  std::vector<ManagerPhase> phases;  // [period]
  uint64_t adaptations_started = 0;
  uint64_t sensed_samples = 0;
  uint64_t estimator_fallbacks = 0;
  uint64_t stale_reports = 0;
  double unfairness = 0.0;
  double throughput_geomean = 0.0;
};

struct SensingComparison {
  std::string mix_name;
  size_t num_apps = 0;  // Including the phased probe app.
  int periods = 0;
  int phase_flip_period = 0;  // Probe app's first phase boundary.
  std::vector<SensingCellResult> cells;  // kNumSensingModes, mode order.
  // Scored against the kExact cell (index 0 scores 1.0 / its own values).
  double agreement[kNumSensingModes] = {0.0, 0.0, 0.0};
  int epochs_to_converge[kNumSensingModes] = {-1, -1, -1};
  int reconverge_epochs[kNumSensingModes] = {-1, -1, -1};
};

// Runs the three cells (ParallelFor over config.parallel) and scores them.
SensingComparison RunSensingComparison(const SensingConfig& config);

// Human-readable table (copartctl sensing).
std::string FormatSensingTable(const SensingComparison& comparison);

// CSV dump: one row per mode with the scored columns.
Status WriteSensingCsv(const SensingComparison& comparison,
                       const std::string& path);

}  // namespace copart

#endif  // COPART_HARNESS_SENSING_H_
