#include "harness/static_oracle.h"

#include <limits>

#include "cache/way_mask.h"
#include "common/logging.h"
#include "metrics/fairness.h"

namespace copart {
namespace {

// Enumerates all compositions of `total` ways into `parts` positive parts.
void EnumerateCompositions(uint32_t total, size_t parts,
                           std::vector<uint32_t>& current,
                           std::vector<std::vector<uint32_t>>& out) {
  if (parts == 1) {
    if (total >= 1) {
      current.push_back(total);
      out.push_back(current);
      current.pop_back();
    }
    return;
  }
  // Leave at least one way for each remaining part.
  for (uint32_t ways = 1; ways + (parts - 1) <= total; ++ways) {
    current.push_back(ways);
    EnumerateCompositions(total - ways, parts - 1, current, out);
    current.pop_back();
  }
}

class Evaluator {
 public:
  Evaluator(const SimulatedMachine& machine, const std::vector<AppId>& apps,
            const ResourcePool& pool)
      : scratch_(machine), apps_(apps), pool_(pool) {
    scratch_.SetIpsNoiseSigma(0.0);
    // One private CLOS per app; CLOS 0 keeps the default full mask but no
    // app remains in it.
    for (size_t i = 0; i < apps_.size(); ++i) {
      const uint32_t clos = static_cast<uint32_t>(i + 1);
      CHECK_LT(clos, scratch_.config().num_clos);
      scratch_.AssignAppToClos(apps_[i], clos);
      solo_full_.push_back(scratch_.SoloFullResourceIps(
          scratch_.Descriptor(apps_[i]), scratch_.AppCores(apps_[i])));
    }
  }

  double Unfairness(const SystemState& state) {
    ++evaluations_;
    for (size_t i = 0; i < apps_.size(); ++i) {
      const uint32_t clos = static_cast<uint32_t>(i + 1);
      Result<WayMask> mask = WayMask::FromBits(state.WayMaskBits(i),
                                               scratch_.config().llc.num_ways);
      CHECK(mask.ok()) << mask.status().ToString();
      scratch_.SetClosWayMask(clos, *mask);
      scratch_.SetClosMbaLevel(clos, state.allocation(i).mba_level);
    }
    // The analytic model is memoryless epoch-to-epoch: one epoch gives the
    // steady-state rates for this configuration.
    scratch_.AdvanceTime(0.1);
    std::vector<double> slowdowns;
    slowdowns.reserve(apps_.size());
    for (size_t i = 0; i < apps_.size(); ++i) {
      slowdowns.push_back(
          Slowdown(solo_full_[i], scratch_.LastEpoch(apps_[i]).ips));
    }
    return ::copart::Unfairness(slowdowns);
  }

  size_t evaluations() const { return evaluations_; }

 private:
  SimulatedMachine scratch_;
  std::vector<AppId> apps_;
  ResourcePool pool_;
  std::vector<double> solo_full_;
  size_t evaluations_ = 0;
};

}  // namespace

namespace {

// Outcome of fully optimizing one way composition (MBA coordinate descent
// on a private machine clone).
struct CompositionOutcome {
  double unfairness = std::numeric_limits<double>::infinity();
  SystemState state;
  size_t evaluations = 0;
};

CompositionOutcome OptimizeComposition(const SimulatedMachine& machine,
                                       const std::vector<AppId>& apps,
                                       const ResourcePool& pool,
                                       const std::vector<uint32_t>& ways) {
  Evaluator evaluator(machine, apps, pool);

  // Start this composition at the pool's MBA ceiling.
  std::vector<AppAllocation> allocations(apps.size());
  for (size_t i = 0; i < apps.size(); ++i) {
    allocations[i].llc_ways = ways[i];
    allocations[i].mba_level = MbaLevel::FromPercentChecked(
        pool.max_mba_percent / 10 * 10 >= MbaLevel::kMin
            ? pool.max_mba_percent / 10 * 10
            : MbaLevel::kMin);
  }
  SystemState state(pool, allocations);
  double state_best = evaluator.Unfairness(state);

  // Two rounds of per-app coordinate descent over the MBA levels.
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < apps.size(); ++i) {
      MbaLevel best_level = state.allocation(i).mba_level;
      for (uint32_t percent = MbaLevel::kMin;
           percent <= pool.max_mba_percent; percent += MbaLevel::kStep) {
        state.allocation(i).mba_level =
            MbaLevel::FromPercentChecked(percent);
        const double unfairness = evaluator.Unfairness(state);
        if (unfairness < state_best) {
          state_best = unfairness;
          best_level = state.allocation(i).mba_level;
        }
      }
      state.allocation(i).mba_level = best_level;
    }
  }
  return CompositionOutcome{state_best, std::move(state),
                            evaluator.evaluations()};
}

}  // namespace

StaticOracleResult FindStaticOracleState(const SimulatedMachine& machine,
                                         const std::vector<AppId>& apps,
                                         const ResourcePool& pool,
                                         const ParallelConfig& parallel) {
  CHECK(!apps.empty());
  CHECK_GE(pool.num_ways, apps.size());

  std::vector<std::vector<uint32_t>> compositions;
  std::vector<uint32_t> current;
  EnumerateCompositions(pool.num_ways, apps.size(), current, compositions);
  CHECK(!compositions.empty());

  StaticOracleResult result;
  const std::vector<CompositionOutcome> outcomes =
      ParallelMap<CompositionOutcome>(
          parallel, compositions.size(),
          [&](size_t c) {
            return OptimizeComposition(machine, apps, pool, compositions[c]);
          },
          &result.stats);

  // Serial reduction in enumeration order: strict < keeps the tie-break
  // (first composition wins) identical to the historical serial search.
  double best = std::numeric_limits<double>::infinity();
  for (const CompositionOutcome& outcome : outcomes) {
    result.states_evaluated += outcome.evaluations;
    if (outcome.unfairness < best) {
      best = outcome.unfairness;
      result.best_state = outcome.state;
      result.best_unfairness = outcome.unfairness;
    }
  }
  CHECK(result.best_state.Valid());
  return result;
}

}  // namespace copart
