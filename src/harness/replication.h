// Replicated experiments: the same (mix, policy) run under R different
// machine seeds (different measurement noise and, through it, different
// controller trajectories), summarized as mean / stddev / min / max.
// Used to put error bars on the headline comparisons
// (bench_replication, tests/harness_replication_test.cc).
#ifndef COPART_HARNESS_REPLICATION_H_
#define COPART_HARNESS_REPLICATION_H_

#include <cstddef>

#include "harness/experiment.h"

namespace copart {

struct ReplicatedMetric {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct ReplicatedResult {
  std::string policy_name;
  std::string mix_name;
  size_t replicas = 0;
  ReplicatedMetric unfairness;
  ReplicatedMetric throughput_geomean;
  // Fan-out accounting for the replica sweep.
  SweepStats stats;
};

// Runs `replicas` independent experiments, deriving each machine seed from
// `base_seed` via the Rng::Fork splitter (stream = replica index). The
// replicas fan out across config.parallel threads; results are identical
// for every thread count.
ReplicatedResult RunReplicatedExperiment(const WorkloadMix& mix,
                                         const PolicyFactory& factory,
                                         const ExperimentConfig& config,
                                         size_t replicas,
                                         uint64_t base_seed = 0xA5EED);

}  // namespace copart

#endif  // COPART_HARNESS_REPLICATION_H_
