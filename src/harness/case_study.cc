#include "harness/case_study.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats.h"
#include "core/resource_manager.h"
#include "core/system_state.h"
#include "harness/mix.h"
#include "machine/simulated_machine.h"
#include "metrics/fairness.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

double LoadAt(const CaseStudyConfig& config, double time) {
  double load = config.load_steps.front().second;
  for (const auto& [start, rps] : config.load_steps) {
    if (time >= start) {
      load = rps;
    }
  }
  return load;
}

// Predicted LC service capacity (IPS) with `ways` LLC ways at MBA 100,
// using the same CPI model as the machine — what a Heracles-style manager
// would fit from its own profiling.
double PredictLcCapability(const WorkloadDescriptor& lc, uint32_t lc_cores,
                           uint32_t ways, const MachineConfig& machine) {
  const double capacity =
      static_cast<double>(machine.llc.WayBytes()) * ways;
  const double miss_ratio = lc.reuse_profile.MissRatio(
      static_cast<uint64_t>(capacity), machine.mrc_mode);
  const double cpi = lc.cpi_exec + lc.accesses_per_instr * miss_ratio *
                                       lc.mem_latency_cycles / lc.mlp;
  return lc_cores * machine.core_freq_hz / cpi;
}

double P95Ms(const CaseStudyConfig& config, double required_ips,
             double capability_ips) {
  double rho = capability_ips > 0.0 ? required_ips / capability_ips : 1.0;
  rho = std::clamp(rho, 0.0, 0.995);
  return config.base_p95_ms *
         (1.0 + config.queueing_shape * rho / (1.0 - rho));
}

}  // namespace

CaseStudyResult RunCaseStudy(const CaseStudyConfig& config) {
  SimulatedMachine machine(config.machine);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);

  // Core split: 8 cores for memcached, 4 for each batch job (16 total).
  const WorkloadDescriptor lc_desc = Memcached();
  const uint32_t lc_cores = 8;
  Result<AppId> lc = machine.LaunchApp(lc_desc, lc_cores);
  CHECK(lc.ok()) << lc.status().ToString();
  Result<AppId> wc = machine.LaunchApp(WordCount(), 4);
  CHECK(wc.ok()) << wc.status().ToString();
  Result<AppId> km = machine.LaunchApp(Kmeans(), 4);
  CHECK(km.ok()) << km.status().ToString();
  const std::vector<AppId> batch = {*wc, *km};

  Result<ResctrlGroupId> lc_group = resctrl.CreateGroup("lc");
  CHECK(lc_group.ok()) << lc_group.status().ToString();
  Status status = resctrl.AssignApp(*lc_group, *lc);
  CHECK(status.ok()) << status.ToString();

  // Ground-truth slowdown references for the batch unfairness series.
  std::vector<double> batch_solo_full;
  for (AppId app : batch) {
    batch_solo_full.push_back(machine.SoloFullResourceIps(
        machine.Descriptor(app), machine.AppCores(app)));
  }

  ResourceManagerParams params = config.copart_params;
  params.control_period_sec = config.control_period_sec;
  ResourceManager manager(&resctrl, &monitor, params);
  if (config.use_copart) {
    manager.SetObservability(config.obs);
  }

  // EQ mode: the batch apps keep static groups we resize on pool changes.
  std::vector<ResctrlGroupId> eq_groups;
  if (!config.use_copart) {
    for (AppId app : batch) {
      Result<ResctrlGroupId> group =
          resctrl.CreateGroup("eq_" + std::to_string(app.value()));
      CHECK(group.ok()) << group.status().ToString();
      status = resctrl.AssignApp(*group, app);
      CHECK(status.ok()) << status.ToString();
      eq_groups.push_back(*group);
    }
  }

  const uint32_t total_ways = config.machine.llc.num_ways;
  uint32_t lc_ways = 0;  // Forces an initial pool installation.
  uint32_t batch_mba = 100;
  bool copart_started = false;

  auto apply_slices = [&](uint32_t new_lc_ways, uint32_t new_batch_mba) {
    lc_ways = new_lc_ways;
    batch_mba = new_batch_mba;
    status = resctrl.SetCacheMask(*lc_group, (1ULL << lc_ways) - 1ULL);
    CHECK(status.ok()) << status.ToString();
    status = resctrl.SetMbaPercent(*lc_group, 100);
    CHECK(status.ok()) << status.ToString();
    const ResourcePool pool{.first_way = lc_ways,
                            .num_ways = total_ways - lc_ways,
                            .max_mba_percent = batch_mba};
    if (config.use_copart) {
      manager.SetResourcePool(pool);
      if (!copart_started) {
        copart_started = true;
        for (AppId app : batch) {
          Status add = manager.AddApp(app);
          CHECK(add.ok()) << add.ToString();
        }
      }
    } else {
      const SystemState eq =
          SystemState::EqualShareThrottled(pool, batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        status = resctrl.SetCacheMask(eq_groups[i], eq.WayMaskBits(i));
        CHECK(status.ok()) << status.ToString();
        status = resctrl.SetMbaPercent(
            eq_groups[i], eq.allocation(i).mba_level.percent());
        CHECK(status.ok()) << status.ToString();
      }
    }
  };

  CaseStudyResult result;
  RunningStats unfairness_stats;
  size_t slo_violations = 0;
  const int periods = static_cast<int>(
      std::llround(config.duration_sec / config.control_period_sec));

  for (int period = 0; period < periods; ++period) {
    const double load = LoadAt(config, machine.now());
    const double required_ips = load * config.instructions_per_request;
    machine.SetAppRequiredIps(*lc, required_ips);

    // Outer manager: smallest LC slice meeting the utilization target,
    // leaving at least one way per batch app.
    const double needed = required_ips / config.target_utilization;
    uint32_t want_ways = total_ways - static_cast<uint32_t>(batch.size());
    for (uint32_t ways = 1;
         ways <= total_ways - static_cast<uint32_t>(batch.size()); ++ways) {
      if (PredictLcCapability(lc_desc, lc_cores, ways, config.machine) >=
          needed) {
        want_ways = ways;
        break;
      }
    }
    const uint32_t want_mba = load >= config.high_load_rps
                                  ? config.batch_mba_ceiling_high_load
                                  : 100;
    if (want_ways != lc_ways || want_mba != batch_mba) {
      apply_slices(want_ways, want_mba);
    }

    machine.AdvanceTime(config.control_period_sec);
    if (config.use_copart) {
      manager.Tick();
    }

    CaseStudySample sample;
    sample.time = machine.now();
    sample.load_rps = load;
    sample.p95_ms =
        P95Ms(config, required_ips, machine.LastEpoch(*lc).ips_capability);
    sample.lc_ways = lc_ways;
    sample.batch_max_mba = batch_mba;
    std::vector<double> slowdowns;
    for (size_t i = 0; i < batch.size(); ++i) {
      slowdowns.push_back(
          Slowdown(batch_solo_full[i], machine.LastEpoch(batch[i]).ips));
    }
    sample.batch_unfairness = Unfairness(slowdowns);
    sample.copart_phase =
        config.use_copart ? ResourceManager::PhaseName(manager.phase()) : "eq";
    unfairness_stats.Add(sample.batch_unfairness);
    if (sample.p95_ms > config.slo_p95_ms) {
      ++slo_violations;
    }
    result.samples.push_back(std::move(sample));
  }

  result.mean_batch_unfairness = unfairness_stats.mean();
  result.slo_violation_fraction =
      static_cast<double>(slo_violations) / static_cast<double>(periods);
  result.copart_adaptations =
      config.use_copart ? manager.adaptations_started() : 0;
  if (config.use_copart) {
    manager.ExportMetrics(ObsMetrics(config.obs));
  }
  return result;
}

}  // namespace copart
