#include "harness/case_study.h"

#include <utility>

#include "common/logging.h"
#include "harness/serve.h"
#include "serve/arrival.h"
#include "workload/workload.h"

namespace copart {
namespace {

// Fig. 15's load steps as a kBurst arrival trace (piecewise-constant
// multipliers of the first step's rate, covering [0, duration_sec)).
ArrivalConfig StepTrace(const CaseStudyConfig& config) {
  CHECK(!config.load_steps.empty());
  ArrivalConfig arrival;
  arrival.kind = ArrivalKind::kBurst;
  arrival.base_rate_rps = config.load_steps.front().second;
  for (size_t i = 0; i < config.load_steps.size(); ++i) {
    const double start = config.load_steps[i].first;
    const double end = i + 1 < config.load_steps.size()
                           ? config.load_steps[i + 1].first
                           : config.duration_sec;
    CHECK_GT(end, start) << "load steps must be increasing";
    arrival.burst_phases.push_back(BurstPhase{
        end - start, config.load_steps[i].second / arrival.base_rate_rps});
  }
  return arrival;
}

}  // namespace

CaseStudyResult RunCaseStudy(const CaseStudyConfig& config) {
  const ArrivalConfig arrival = StepTrace(config);

  ServeScenarioConfig serve;
  serve.machine = config.machine;
  serve.duration_sec = config.duration_sec;
  serve.control_period_sec = config.control_period_sec;
  serve.seed = config.seed;

  ServeLcSpec lc;
  lc.workload = Memcached();
  lc.cores = 8;
  lc.arrival = arrival;
  lc.slo_p95_ms = config.slo_p95_ms;
  lc.instructions_per_request = config.instructions_per_request;
  serve.lc_apps.push_back(std::move(lc));
  serve.batch_apps.push_back(ServeBatchSpec{WordCount(), 4});
  serve.batch_apps.push_back(ServeBatchSpec{Kmeans(), 4});

  serve.mode =
      config.use_copart ? ServeMode::kCopartSlo : ServeMode::kEqualShare;
  serve.copart_params = config.copart_params;
  serve.copart_params.slo.protect_rps_threshold = config.high_load_rps;
  serve.copart_params.slo.batch_mba_protect_percent =
      config.batch_mba_ceiling_high_load;
  serve.obs = config.obs;

  const ServeScenarioResult run = RunServeScenario(serve);

  CaseStudyResult result;
  result.samples.reserve(run.samples.size());
  for (const ServeSample& s : run.samples) {
    CaseStudySample sample;
    sample.time = s.time;
    // The configured step rate at the epoch's start (s.time is its end).
    sample.load_rps =
        ArrivalRateAt(arrival, s.time - config.control_period_sec);
    sample.p95_ms = s.p95_ms;
    sample.queue_depth = s.queue_depth;
    sample.lc_ways = s.lc_ways;
    sample.batch_max_mba = s.batch_max_mba;
    sample.batch_unfairness = s.batch_unfairness;
    sample.copart_phase = s.phase;
    result.samples.push_back(std::move(sample));
  }
  result.mean_batch_unfairness = run.mean_batch_unfairness;
  result.copart_adaptations = run.copart_adaptations;
  const ServeLcResult& mc = run.lc.front();
  result.slo_violation_fraction = mc.slo_violation_fraction;
  result.lc_arrivals = mc.arrivals;
  result.lc_completions = mc.completions;
  result.lc_drops = mc.drops;
  result.lc_run_p95_ms = mc.p95_ms;
  return result;
}

}  // namespace copart
