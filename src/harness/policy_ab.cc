#include "harness/policy_ab.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "common/units.h"
#include "core/partition_policy.h"
#include "harness/table_printer.h"
#include "workload/workload.h"

namespace copart {

PolicyAbScenario ManyAppsScenario(size_t app_count) {
  PolicyAbScenario scenario;
  scenario.name = "many-" + std::to_string(app_count);
  scenario.machine.num_cores = 64;
  scenario.machine.total_memory_bandwidth = GBps(112.0);
  scenario.cores_per_app = 1;
  scenario.mix.name = scenario.name;
  const std::vector<WorkloadDescriptor> roster = AllTable2Benchmarks();
  for (size_t i = 0; i < app_count; ++i) {
    scenario.mix.apps.push_back(roster[i % roster.size()]);
  }
  return scenario;
}

std::vector<PolicyAbScenario> PolicyAbScenarios(const PolicyAbConfig& config) {
  std::vector<PolicyAbScenario> scenarios;
  if (config.include_paper_mixes) {
    for (const MixFamily family : AllMixFamilies()) {
      PolicyAbScenario scenario;
      scenario.mix = MakeMix(family, config.paper_mix_app_count);
      scenario.name = scenario.mix.name;
      scenarios.push_back(std::move(scenario));
    }
  }
  if (config.many_apps > 0) {
    scenarios.push_back(ManyAppsScenario(config.many_apps));
  }
  return scenarios;
}

PolicyAbResult RunPolicyAb(const PolicyAbConfig& config) {
  const std::vector<PolicyAbScenario> scenarios = PolicyAbScenarios(config);
  CHECK(!scenarios.empty());
  CHECK(!config.policies.empty());
  const size_t num_cells = scenarios.size() * config.policies.size();

  PolicyAbResult result;
  result.cells = ParallelMap<PolicyAbCell>(
      config.parallel, num_cells,
      [&](size_t index) {
        const PolicyAbScenario& scenario =
            scenarios[index / config.policies.size()];
        const std::string& policy =
            config.policies[index % config.policies.size()];
        ResourceManagerParams params;
        params.partition_policy = policy;

        ExperimentConfig experiment;
        experiment.machine = scenario.machine;
        experiment.pool = scenario.pool;
        experiment.duration_sec = config.duration_sec;
        experiment.control_period_sec = config.control_period_sec;
        experiment.cores_per_app = scenario.cores_per_app;
        const ExperimentResult run = RunExperiment(
            scenario.mix, PartitionPolicyFactory(params), experiment);

        PolicyAbCell cell;
        cell.scenario = scenario.name;
        cell.policy = policy;
        cell.num_apps = run.slowdowns.size();
        cell.unmanaged_apps = run.unmanaged_apps;
        cell.unfairness = run.unfairness;
        cell.throughput_geomean = run.throughput_geomean;
        size_t violations = 0;
        for (const double slowdown : run.slowdowns) {
          if (slowdown > config.slo_slowdown_threshold) {
            ++violations;
          }
        }
        cell.slo_violation_rate =
            cell.num_apps == 0
                ? 0.0
                : static_cast<double>(violations) /
                      static_cast<double>(cell.num_apps);
        return cell;
      },
      &result.stats);
  return result;
}

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string PolicyAbToJson(const PolicyAbResult& result) {
  std::ostringstream out;
  out << "{\n  \"cells\": [\n";
  for (size_t i = 0; i < result.cells.size(); ++i) {
    const PolicyAbCell& cell = result.cells[i];
    out << "    {\"scenario\": \"" << cell.scenario << "\", \"policy\": \""
        << cell.policy << "\", \"apps\": " << cell.num_apps
        << ", \"unmanaged\": " << cell.unmanaged_apps
        << ", \"unfairness\": " << FormatDouble(cell.unfairness)
        << ", \"throughput_geomean\": "
        << FormatDouble(cell.throughput_geomean)
        << ", \"slo_violation_rate\": "
        << FormatDouble(cell.slo_violation_rate) << "}"
        << (i + 1 == result.cells.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

void PrintPolicyAbTable(const PolicyAbResult& result, std::FILE* out) {
  std::vector<std::vector<std::string>> rows;
  for (const PolicyAbCell& cell : result.cells) {
    rows.push_back({cell.scenario, cell.policy,
                    std::to_string(cell.num_apps),
                    std::to_string(cell.unmanaged_apps),
                    FormatFixed(cell.unfairness, 4),
                    FormatSci(cell.throughput_geomean),
                    FormatFixed(100.0 * cell.slo_violation_rate, 1) + "%"});
  }
  PrintTable({"scenario", "policy", "apps", "unmanaged", "unfairness",
              "geomean IPS", "slo_viol"},
             rows, out);

  // Verdict for the many-apps scenario: best clustered policy vs the
  // per-app CoPart fallback (which leaves the overflow unmanaged).
  const PolicyAbCell* copart = nullptr;
  const PolicyAbCell* best_clustered = nullptr;
  for (const PolicyAbCell& cell : result.cells) {
    if (cell.scenario.rfind("many-", 0) != 0) {
      continue;
    }
    if (cell.policy == "copart") {
      if (copart == nullptr || cell.unfairness < copart->unfairness) {
        copart = &cell;
      }
    } else if (best_clustered == nullptr ||
               cell.unfairness < best_clustered->unfairness) {
      best_clustered = &cell;
    }
  }
  if (copart != nullptr && best_clustered != nullptr) {
    std::fprintf(
        out,
        "many-apps verdict: %s unfairness %.4f (0 unmanaged) vs copart "
        "%.4f (%zu of %zu apps unmanaged) — clustering %s\n",
        best_clustered->policy.c_str(), best_clustered->unfairness,
        copart->unfairness, copart->unmanaged_apps, copart->num_apps,
        best_clustered->unfairness < copart->unfairness ? "wins" : "loses");
  }
}

}  // namespace copart
