// Fleet robustness scenario: diurnal job arrivals over hundreds of nodes,
// background node faults, and one scripted crash wave.
//
// This is the workload that exercises src/cluster/fleet.h end to end: jobs
// drawn from the Table 2 catalog (plus memcached for the latency-critical
// fraction) arrive on a diurnal schedule at the fleet front door, run for
// bounded lifetimes, and survive — or don't — crashes, slow nodes, and
// actuation blackouts. At `crash_wave_epoch` a seeded fraction of the
// fleet is killed at once, and the scenario reports how many epochs the
// fleet needs to return to full strength.
//
// Everything is a pure function of `seed` at any --threads value: the
// chaos suite byte-compares DeterministicSummary() across thread counts,
// and bench_fleet gates the deterministic outcome fields exactly.
#ifndef COPART_HARNESS_FLEET_H_
#define COPART_HARNESS_FLEET_H_

#include <cstdint>
#include <string>

#include "cluster/fleet.h"
#include "serve/arrival.h"

namespace copart {

struct FleetScenarioConfig {
  uint64_t seed = 0xF1EE7ULL;
  size_t num_nodes = 256;
  int epochs = 240;

  // Node templates, thresholds, and fault windows. The scenario overrides
  // seed/parallel/obs/injector from its own fields.
  FleetParams fleet;

  // Job arrivals in simulated time (jobs/s; one control period is
  // fleet.control_period_sec). Defaults to a diurnal ramp so the fleet
  // sees both slack and pressure within one run.
  ArrivalConfig job_arrivals = [] {
    ArrivalConfig arrivals;
    arrivals.kind = ArrivalKind::kDiurnal;
    arrivals.base_rate_rps = 8.0;
    arrivals.diurnal_period_sec = 60.0;
    arrivals.diurnal_amplitude = 0.8;
    return arrivals;
  }();

  // Sampled per job: cores uniform in {2, 4}, lifetime uniform in
  // [lifetime_min_epochs, lifetime_max_epochs], and `lc_fraction` of jobs
  // are latency-critical memcached instances.
  int lifetime_min_epochs = 30;
  int lifetime_max_epochs = 120;
  double lc_fraction = 0.15;
  double lc_offered_rps = 20000.0;

  // Background per-node, per-epoch fault probabilities (0 disarms the
  // point). Drawn from a scenario-owned injector forked off `seed`.
  double crash_probability = 0.0;
  double slow_probability = 0.0;
  double blackout_probability = 0.0;

  // Scripted crash wave: at this epoch (< 0 disables), a seeded
  // `crash_wave_fraction` of the currently-alive nodes dies at once.
  int crash_wave_epoch = -1;
  double crash_wave_fraction = 0.10;

  ParallelConfig parallel;
  Observability* obs = nullptr;  // Not owned; audit + fleet metrics sink.
};

struct FleetScenarioResult {
  FleetCounters counters;
  size_t alive_nodes = 0;
  size_t resident_jobs = 0;
  uint64_t node_ticks = 0;
  double mean_node_unfairness = 0.0;
  // 99th percentile of all resident-job slowdowns at the end of the run.
  double fleet_p99_slowdown = 0.0;
  // Epochs from the crash wave until every node is back up (-1 when no
  // wave was scripted or the fleet never fully recovered).
  int recovery_epochs = -1;
  std::string first_violation;  // "" when every invariant check passed.

  // One line per deterministic outcome field, formatted with %.17g — the
  // thread-invariance tests byte-compare this across --threads values.
  std::string DeterministicSummary() const;
};

FleetScenarioResult RunFleetScenario(const FleetScenarioConfig& config);

}  // namespace copart

#endif  // COPART_HARNESS_FLEET_H_
