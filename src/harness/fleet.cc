#include "harness/fleet.h"

#include <cstdio>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "workload/workload.h"

namespace copart {
namespace {

// Stream tags for the scenario's independent Rng forks (arbitrary pinned
// constants; changing one reshuffles every seeded fleet run).
constexpr uint64_t kArrivalStream = 0xA221;
constexpr uint64_t kSpecStream = 0x5BEC;
constexpr uint64_t kWaveStream = 0x3A4E;
constexpr uint64_t kInjectorStream = 0xFA17;

FleetJobSpec SampleJob(const FleetScenarioConfig& config, Rng& rng) {
  // Fixed draw sequence per job — lc?, catalog index, cores, lifetime —
  // so toggling lc_fraction between runs shifts nothing else.
  const bool lc =
      static_cast<double>(rng.NextUint64(1000)) < config.lc_fraction * 1000.0;
  static const std::vector<WorkloadDescriptor> catalog =
      AllTable2Benchmarks();
  const size_t pick = rng.NextUint64(catalog.size());
  const uint32_t cores = rng.NextUint64(2) == 0 ? 2 : 4;
  const int span = config.lifetime_max_epochs - config.lifetime_min_epochs;
  const int lifetime =
      config.lifetime_min_epochs +
      (span > 0 ? static_cast<int>(rng.NextUint64(span + 1)) : 0);

  FleetJobSpec spec;
  if (lc) {
    spec.workload = Memcached();
    spec.latency_critical = true;
    spec.offered_rps = config.lc_offered_rps;
  } else {
    spec.workload = catalog[pick];
  }
  spec.cores = cores;
  spec.lifetime_epochs = lifetime;
  return spec;
}

}  // namespace

std::string FleetScenarioResult::DeterministicSummary() const {
  std::ostringstream out;
  out << "submitted " << counters.submitted << "\n"
      << "completed " << counters.completed << "\n"
      << "shed_admission " << counters.shed_admission << "\n"
      << "shed_overload " << counters.shed_overload << "\n"
      << "shed_migration " << counters.shed_migration << "\n"
      << "lost_to_crash " << counters.lost_to_crash << "\n"
      << "crashes " << counters.crashes << "\n"
      << "reboots " << counters.reboots << "\n"
      << "slow_episodes " << counters.slow_episodes << "\n"
      << "blackout_episodes " << counters.blackout_episodes << "\n"
      << "migrations_planned " << counters.migrations_planned << "\n"
      << "migrations_completed " << counters.migrations_completed << "\n"
      << "migration_rollbacks " << counters.migration_rollbacks << "\n"
      << "migration_failures " << counters.migration_failures << "\n"
      << "invariant_violations " << counters.invariant_violations << "\n"
      << "alive_nodes " << alive_nodes << "\n"
      << "resident_jobs " << resident_jobs << "\n"
      << "node_ticks " << node_ticks << "\n"
      << "recovery_epochs " << recovery_epochs << "\n";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", mean_node_unfairness);
  out << "mean_node_unfairness " << buffer << "\n";
  std::snprintf(buffer, sizeof(buffer), "%.17g", fleet_p99_slowdown);
  out << "fleet_p99_slowdown " << buffer << "\n";
  return out.str();
}

FleetScenarioResult RunFleetScenario(const FleetScenarioConfig& config) {
  FleetParams params = config.fleet;
  params.seed = config.seed;
  params.parallel = config.parallel;
  params.obs = config.obs;

  // Background fault domains: scenario-owned injector, forked off the
  // scenario seed so the schedule is part of the same replay.
  FaultInjector injector(Rng(config.seed).Fork(kInjectorStream).NextUint64());
  const auto arm = [&injector](std::string_view point, double probability) {
    if (probability > 0.0) {
      FaultSpec spec;
      spec.probability = probability;
      injector.Arm(point, spec);
    }
  };
  arm(fault_points::kNodeCrash, config.crash_probability);
  arm(fault_points::kNodeSlow, config.slow_probability);
  arm(fault_points::kNodeBlackout, config.blackout_probability);
  if (injector.armed()) {
    params.injector = &injector;
  }

  FleetController fleet(config.num_nodes, params);
  ArrivalGenerator arrivals(config.job_arrivals,
                            Rng(config.seed).Fork(kArrivalStream));
  Rng spec_rng = Rng(config.seed).Fork(kSpecStream);
  double next_arrival = arrivals.Next();

  int wave_epoch = -1;
  int recovery_epochs = -1;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Submissions scheduled up to the start of this control period.
    const double now =
        static_cast<double>(epoch) * params.control_period_sec;
    while (next_arrival <= now) {
      // A shed submission is a recorded outcome, not an error.
      (void)fleet.Submit(SampleJob(config, spec_rng));
      next_arrival = arrivals.Next();
    }

    if (config.crash_wave_epoch >= 0 && epoch == config.crash_wave_epoch) {
      // Kill a seeded sample of the alive fleet at once.
      std::vector<size_t> alive;
      for (size_t i = 0; i < fleet.NumNodes(); ++i) {
        if (fleet.node_status(i).health == NodeHealth::kAlive) {
          alive.push_back(i);
        }
      }
      size_t to_kill = static_cast<size_t>(
          static_cast<double>(alive.size()) * config.crash_wave_fraction);
      if (to_kill == 0 && !alive.empty()) {
        to_kill = 1;
      }
      Rng wave_rng = Rng(config.seed).Fork(kWaveStream);
      for (size_t k = 0; k < to_kill; ++k) {
        // Partial Fisher-Yates: each draw picks a distinct alive node.
        const size_t pick =
            k + static_cast<size_t>(wave_rng.NextUint64(alive.size() - k));
        std::swap(alive[k], alive[pick]);
        fleet.CrashNode(alive[k]);
      }
      wave_epoch = epoch;
      LOG_INFO << "fleet crash wave: " << to_kill << " of " << alive.size()
               << " nodes down at epoch " << epoch;
    }

    fleet.RunEpoch();
    if (wave_epoch >= 0 && recovery_epochs < 0 &&
        fleet.AliveNodes() == fleet.NumNodes()) {
      recovery_epochs = epoch - wave_epoch;
    }
  }

  FleetScenarioResult result;
  result.counters = fleet.counters();
  result.alive_nodes = fleet.AliveNodes();
  result.resident_jobs = fleet.ResidentJobs();
  result.node_ticks = fleet.node_ticks();
  result.mean_node_unfairness = fleet.MeanNodeUnfairness();
  const std::vector<double> slowdowns = fleet.AllSlowdowns();
  result.fleet_p99_slowdown = Percentile(slowdowns, 99.0);
  result.recovery_epochs = recovery_epochs;
  result.first_violation = fleet.first_violation();
  fleet.ExportMetrics(ObsMetrics(config.obs));
  return result;
}

}  // namespace copart
