// Offline search for the ST baseline (paper §6.1).
//
// The paper's ST policy "statically employs the system state that exhibits
// the highest fairness among the system states that are evaluated through
// extensive offline experiments". We reproduce that with a what-if search
// against a noise-free clone of the machine: every composition of the
// pool's ways across the apps is enumerated, and for each composition the
// per-app MBA levels are optimized with two rounds of coordinate descent.
// Each candidate is scored by the unfairness (Eq. 2) the analytic epoch
// model predicts at steady state.
#ifndef COPART_HARNESS_STATIC_ORACLE_H_
#define COPART_HARNESS_STATIC_ORACLE_H_

#include <vector>

#include "common/parallel.h"
#include "core/system_state.h"
#include "machine/app_id.h"
#include "machine/simulated_machine.h"

namespace copart {

struct StaticOracleResult {
  SystemState best_state;
  double best_unfairness = 0.0;
  size_t states_evaluated = 0;
  // Fan-out accounting for the composition search.
  SweepStats stats;
};

// The way compositions fan out across `parallel` threads (each composition
// optimizes its MBA levels on a private machine clone); the best state is
// selected serially in enumeration order, so the result is identical for
// every thread count. Callers that may themselves run inside a parallel
// region (e.g. the ST policy factory during a replicated experiment) must
// pass ParallelConfig{1}.
StaticOracleResult FindStaticOracleState(const SimulatedMachine& machine,
                                         const std::vector<AppId>& apps,
                                         const ResourcePool& pool,
                                         const ParallelConfig& parallel = {});

}  // namespace copart

#endif  // COPART_HARNESS_STATIC_ORACLE_H_
