// Plain-text rendering of result tables and heatmaps, used by the benchmark
// binaries to print the rows/series each paper table or figure reports.
#ifndef COPART_HARNESS_TABLE_PRINTER_H_
#define COPART_HARNESS_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace copart {

// Fixed-precision / scientific shorthand formatters.
std::string FormatFixed(double value, int precision = 3);
std::string FormatSci(double value, int precision = 2);

// Renders an aligned table to `out` (default stdout).
void PrintTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows,
                std::FILE* out = stdout);

// Renders a labeled numeric grid (rows x cols) with a caption.
void PrintHeatmap(const std::string& caption,
                  const std::vector<std::string>& row_labels,
                  const std::vector<std::string>& col_labels,
                  const std::vector<std::vector<double>>& values,
                  int precision = 2, std::FILE* out = stdout);

// Joins a uint vector as "(a,b,c)".
std::string JoinParen(const std::vector<uint32_t>& values);

}  // namespace copart

#endif  // COPART_HARNESS_TABLE_PRINTER_H_
