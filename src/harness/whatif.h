// What-if analysis: predict the consequences of a candidate allocation for
// a set of workloads without running a live experiment.
//
// A consolidation operator (or an outer scheduler choosing colocations)
// often wants "if I put these apps together under this partitioning, who
// slows down and by how much?". PredictOutcome builds a noise-free machine
// clone, applies the candidate SystemState, solves one epoch, and returns
// per-app slowdowns plus the unfairness and aggregate throughput — the
// same evaluator the offline ST search uses internally, exposed as a
// library surface (and as `copartctl`'s oracle/compare data source).
// For scoring *many* candidate states over one fixed set of workloads
// (placement oracles, neighbor searches), WhatIfEvaluator amortizes the
// machine construction: it launches the workloads once and evaluates each
// candidate by applying its partitioning + one epoch — O(apps) per
// candidate instead of O(machine construction + profiling), bit-identical
// to PredictOutcome.
#ifndef COPART_HARNESS_WHATIF_H_
#define COPART_HARNESS_WHATIF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/system_state.h"
#include "machine/machine_config.h"
#include "machine/simulated_machine.h"
#include "workload/workload.h"

namespace copart {

struct WhatIfOutcome {
  std::vector<std::string> app_names;
  std::vector<double> predicted_ips;
  std::vector<double> solo_full_ips;
  std::vector<double> slowdowns;
  double unfairness = 0.0;
  double throughput_geomean = 0.0;
};

// Predicts the steady-state outcome of running `workloads` under `state`.
// The state must cover exactly workloads.size() apps and be Valid().
// cores_per_app = 0 (the default) gives each app its descriptor's own
// num_threads; a positive value overrides uniformly.
WhatIfOutcome PredictOutcome(const std::vector<WorkloadDescriptor>& workloads,
                             const SystemState& state,
                             const MachineConfig& machine_config = {},
                             uint32_t cores_per_app = 0);

// Convenience: the equal-share outcome for a quick colocation sanity check.
WhatIfOutcome PredictEqualShareOutcome(
    const std::vector<WorkloadDescriptor>& workloads,
    const ResourcePool& pool, const MachineConfig& machine_config = {},
    uint32_t cores_per_app = 0);

// Outcome under a miss-minimizing UCP way split (core/ucp_policy.h) at the
// pool's MBA ceiling — a cheap proxy for what a converged dynamic
// partitioner (CoPart) will reach on the node, and therefore the right
// basis for placement decisions (Cluster's kWhatIfBest).
WhatIfOutcome PredictUcpOutcome(
    const std::vector<WorkloadDescriptor>& workloads,
    const ResourcePool& pool, const MachineConfig& machine_config = {},
    uint32_t cores_per_app = 0);

// Reusable evaluator for scoring many candidate allocations over a fixed
// set of workloads. Construction launches the workloads once on a noise-free
// machine and computes the solo-full references; each Evaluate() applies the
// candidate state and solves one epoch. For phase-free workloads candidates
// apply directly on top of the previous one (the solve is a pure function of
// the partitioning inputs, so the drifting clock is irrelevant), which lets
// a candidate differing only in MBA levels reuse the machine's cached
// capacity fixed point — the dominant move in coordinate-descent searches.
// Phased workloads roll back to a baseline Snapshot() first so every
// candidate is scored at the same instant. Results are bit-identical to
// PredictOutcome on the same inputs; EvaluateInto is allocation-free once
// the outcome vectors reach steady size.
class WhatIfEvaluator {
 public:
  explicit WhatIfEvaluator(const std::vector<WorkloadDescriptor>& workloads,
                           const MachineConfig& machine_config = {},
                           uint32_t cores_per_app = 0);

  // Predicts the steady-state outcome of `state`, which must cover exactly
  // NumApps() apps and be Valid().
  WhatIfOutcome Evaluate(const SystemState& state);
  void EvaluateInto(const SystemState& state, WhatIfOutcome* outcome);

  size_t NumApps() const { return apps_.size(); }

 private:
  SimulatedMachine machine_;
  std::vector<std::string> app_names_;
  std::vector<AppId> apps_;
  std::vector<double> solo_full_ips_;
  bool has_phases_ = false;
  MachineSnapshot baseline_;
};

}  // namespace copart

#endif  // COPART_HARNESS_WHATIF_H_
