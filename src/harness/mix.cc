#include "harness/mix.h"

#include "common/logging.h"

namespace copart {
namespace {

std::vector<WorkloadDescriptor> ClassBenchmarks(MixFamily family) {
  switch (family) {
    case MixFamily::kHighLlc:
    case MixFamily::kModerateLlc:
      return BenchmarksByCategory(WorkloadCategory::kLlcSensitive);
    case MixFamily::kHighBw:
    case MixFamily::kModerateBw:
      return BenchmarksByCategory(WorkloadCategory::kBwSensitive);
    case MixFamily::kHighBoth:
    case MixFamily::kModerateBoth:
      return BenchmarksByCategory(WorkloadCategory::kBothSensitive);
    case MixFamily::kInsensitive:
      return BenchmarksByCategory(WorkloadCategory::kInsensitive);
  }
  return {};
}

}  // namespace

const char* MixFamilyName(MixFamily family) {
  switch (family) {
    case MixFamily::kHighLlc:
      return "H-LLC";
    case MixFamily::kHighBw:
      return "H-BW";
    case MixFamily::kHighBoth:
      return "H-Both";
    case MixFamily::kModerateLlc:
      return "M-LLC";
    case MixFamily::kModerateBw:
      return "M-BW";
    case MixFamily::kModerateBoth:
      return "M-Both";
    case MixFamily::kInsensitive:
      return "IS";
  }
  return "?";
}

std::vector<MixFamily> AllMixFamilies() {
  return {MixFamily::kHighLlc,      MixFamily::kHighBw,
          MixFamily::kHighBoth,     MixFamily::kModerateLlc,
          MixFamily::kModerateBw,   MixFamily::kModerateBoth,
          MixFamily::kInsensitive};
}

WorkloadMix MakeMix(MixFamily family, size_t app_count) {
  CHECK_GE(app_count, 2u);
  const std::vector<WorkloadDescriptor> sensitive = ClassBenchmarks(family);
  const std::vector<WorkloadDescriptor> insensitive =
      BenchmarksByCategory(WorkloadCategory::kInsensitive);
  CHECK(!sensitive.empty());
  CHECK(!insensitive.empty());

  size_t num_sensitive = 0;
  switch (family) {
    case MixFamily::kHighLlc:
    case MixFamily::kHighBw:
    case MixFamily::kHighBoth:
      num_sensitive = app_count - 1;
      break;
    case MixFamily::kModerateLlc:
    case MixFamily::kModerateBw:
    case MixFamily::kModerateBoth:
      num_sensitive = app_count / 2;
      break;
    case MixFamily::kInsensitive:
      num_sensitive = 0;
      break;
  }

  WorkloadMix mix;
  mix.name = std::string(MixFamilyName(family)) + "-" +
             std::to_string(app_count);
  for (size_t i = 0; i < num_sensitive; ++i) {
    mix.apps.push_back(sensitive[i % sensitive.size()]);
  }
  for (size_t i = mix.apps.size(); i < app_count; ++i) {
    mix.apps.push_back(insensitive[i % insensitive.size()]);
  }
  return mix;
}

WorkloadMix LlcSensitiveCharacterizationMix() {
  return WorkloadMix{"LLC-sensitive",
                     {WaterNsquared(), WaterSpatial(), Raytrace(),
                      Swaptions()}};
}

WorkloadMix BwSensitiveCharacterizationMix() {
  return WorkloadMix{"BW-sensitive", {OceanCp(), Cg(), Ft(), Swaptions()}};
}

WorkloadMix BothSensitiveCharacterizationMix() {
  return WorkloadMix{"LM-sensitive", {Sp(), OceanNcp(), Fmm(), Swaptions()}};
}

uint32_t CoresPerApp(size_t app_count) {
  CHECK_GT(app_count, 0u);
  constexpr uint32_t kMachineCores = 16;
  const uint32_t per_app =
      kMachineCores / static_cast<uint32_t>(app_count);
  CHECK_GE(per_app, 1u) << "too many apps for the machine";
  return per_app;
}

}  // namespace copart
