#include "harness/sensing.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "core/policies.h"
#include "harness/csv_writer.h"
#include "machine/simulated_machine.h"
#include "metrics/fairness.h"
#include "resctrl/resctrl.h"

namespace copart {
namespace {

// Configures the monitor for one cell. kExact leaves sensing off.
void ConfigureCell(PerfMonitor& monitor, SensingMode mode,
                   const PmcSensingParams& base) {
  if (mode == SensingMode::kExact) {
    return;
  }
  PmcSensingParams params = base;
  params.enabled = true;
  params.estimate_miss_ratio = true;
  if (mode == SensingMode::kEstimated) {
    params.noise_sigma = 0.0;
    params.interval_jitter = 0.0;
    params.stale_probability = 0.0;
  }
  monitor.ConfigureSensing(params);
}

SensingCellResult RunCell(const SensingConfig& config, SensingMode mode,
                          const WorkloadMix& mix, uint32_t cores,
                          int periods) {
  SimulatedMachine machine(config.machine);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  ConfigureCell(monitor, mode, config.sensing);

  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor : mix.apps) {
    Result<AppId> app = machine.LaunchApp(descriptor, cores);
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
  }

  CoPartPolicy policy(&resctrl, &monitor, apps, config.pool, config.manager,
                      CoPartPolicy::Mode::kCoordinated);
  policy.Start();

  SensingCellResult cell;
  cell.mode = mode;
  cell.llc_classes.reserve(periods);
  cell.mba_classes.reserve(periods);
  cell.phases.reserve(periods);
  for (int period = 0; period < periods; ++period) {
    machine.AdvanceTime(config.control_period_sec);
    policy.Tick();
    std::vector<ResourceClass> llc(apps.size());
    std::vector<ResourceClass> mba(apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
      llc[i] = policy.manager().LlcClass(apps[i]);
      mba[i] = policy.manager().MbaClass(apps[i]);
    }
    cell.llc_classes.push_back(std::move(llc));
    cell.mba_classes.push_back(std::move(mba));
    cell.phases.push_back(policy.manager().phase());
  }

  cell.adaptations_started = policy.manager().adaptations_started();
  cell.sensed_samples = monitor.sensed_samples();
  cell.estimator_fallbacks = monitor.estimator_fallbacks();
  cell.stale_reports = monitor.stale_reports();

  std::vector<double> slowdowns(apps.size());
  std::vector<double> avg_ips(apps.size());
  const double elapsed = machine.now();
  for (size_t i = 0; i < apps.size(); ++i) {
    avg_ips[i] = machine.Counters(apps[i]).instructions / elapsed;
    slowdowns[i] = Slowdown(machine.SoloFullResourceIps(mix.apps[i], cores),
                            avg_ips[i]);
  }
  cell.unfairness = Unfairness(slowdowns);
  cell.throughput_geomean = GeoMeanThroughput(avg_ips);
  return cell;
}

// First period the manager spent idle (adaptation settled), or -1.
int FirstIdlePeriod(const std::vector<ManagerPhase>& phases, int from) {
  for (size_t p = static_cast<size_t>(from); p < phases.size(); ++p) {
    if (phases[p] == ManagerPhase::kIdle) {
      return static_cast<int>(p);
    }
  }
  return -1;
}

}  // namespace

const char* SensingModeName(SensingMode mode) {
  switch (mode) {
    case SensingMode::kExact:
      return "exact";
    case SensingMode::kEstimated:
      return "estimated";
    case SensingMode::kEstimatedNoisy:
      return "estimated+noisy";
  }
  return "?";
}

SensingComparison RunSensingComparison(const SensingConfig& config) {
  CHECK_GE(config.app_count, 1u);
  CHECK_GT(config.duration_sec, 0.0);
  CHECK_GT(config.control_period_sec, 0.0);

  // The mix plus the phased re-convergence probe: its scan phase begins at
  // 40% of the run, leaving the back 60% to observe re-adaptation.
  WorkloadMix mix = MakeMix(config.family, config.app_count);
  const double flip_sec = 0.4 * config.duration_sec;
  mix.apps.push_back(PhasedScanCompute(flip_sec));
  const uint32_t cores =
      config.machine.num_cores / static_cast<uint32_t>(mix.apps.size());
  CHECK_GE(cores, 1u) << "too many apps for the machine";
  const int periods = static_cast<int>(
      std::llround(config.duration_sec / config.control_period_sec));

  SensingComparison comparison;
  comparison.mix_name = mix.name + "+PH";
  comparison.num_apps = mix.apps.size();
  comparison.periods = periods;
  comparison.phase_flip_period = static_cast<int>(
      std::llround(flip_sec / config.control_period_sec));

  // The cells are independent single-threaded control loops; fan them out.
  comparison.cells = ParallelMap<SensingCellResult>(
      config.parallel, kNumSensingModes, [&](size_t i) {
        return RunCell(config, static_cast<SensingMode>(i), mix, cores,
                       periods);
      });

  const SensingCellResult& exact = comparison.cells[0];
  for (size_t m = 0; m < kNumSensingModes; ++m) {
    const SensingCellResult& cell = comparison.cells[m];
    // Agreement over every (period, app, resource) decision.
    uint64_t total = 0;
    uint64_t matched = 0;
    for (int p = 0; p < periods; ++p) {
      for (size_t a = 0; a < comparison.num_apps; ++a) {
        total += 2;
        matched += cell.llc_classes[p][a] == exact.llc_classes[p][a] ? 1 : 0;
        matched += cell.mba_classes[p][a] == exact.mba_classes[p][a] ? 1 : 0;
      }
    }
    comparison.agreement[m] =
        total > 0 ? static_cast<double>(matched) / static_cast<double>(total)
                  : 1.0;
    comparison.epochs_to_converge[m] = FirstIdlePeriod(cell.phases, 0);

    // Re-convergence: first re-profiling at/after the probe's phase flip,
    // then the first idle period after it.
    int readapt = -1;
    for (int p = comparison.phase_flip_period; p < periods; ++p) {
      if (cell.phases[p] == ManagerPhase::kProfiling) {
        readapt = p;
        break;
      }
    }
    if (readapt >= 0) {
      const int settled = FirstIdlePeriod(cell.phases, readapt);
      if (settled >= 0) {
        comparison.reconverge_epochs[m] = settled - readapt;
      }
    }
  }
  return comparison;
}

std::string FormatSensingTable(const SensingComparison& comparison) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "sensing A/B: mix %s, %zu apps, %d periods (phase flip @ %d)\n",
                comparison.mix_name.c_str(), comparison.num_apps,
                comparison.periods, comparison.phase_flip_period);
  out += line;
  std::snprintf(line, sizeof(line), "%-16s %9s %9s %10s %10s %7s %10s %12s\n",
                "mode", "agreement", "converge", "reconverge", "fallbacks",
                "stale", "unfairness", "geomean_ips");
  out += line;
  for (size_t m = 0; m < comparison.cells.size(); ++m) {
    const SensingCellResult& cell = comparison.cells[m];
    std::snprintf(line, sizeof(line),
                  "%-16s %9.4f %9d %10d %10llu %7llu %10.4f %12.5g\n",
                  SensingModeName(cell.mode), comparison.agreement[m],
                  comparison.epochs_to_converge[m],
                  comparison.reconverge_epochs[m],
                  static_cast<unsigned long long>(cell.estimator_fallbacks),
                  static_cast<unsigned long long>(cell.stale_reports),
                  cell.unfairness, cell.throughput_geomean);
    out += line;
  }
  return out;
}

Status WriteSensingCsv(const SensingComparison& comparison,
                       const std::string& path) {
  CsvWriter csv(path);
  if (!csv.ok()) {
    return csv.status();
  }
  csv.WriteRow({"mix", "mode", "agreement", "epochs_to_converge",
                "reconverge_epochs", "adaptations_started",
                "sensed_samples", "estimator_fallbacks", "stale_reports",
                "unfairness", "throughput_geomean"});
  for (size_t m = 0; m < comparison.cells.size(); ++m) {
    const SensingCellResult& cell = comparison.cells[m];
    char value[64];
    std::vector<std::string> row = {comparison.mix_name,
                                    SensingModeName(cell.mode)};
    std::snprintf(value, sizeof(value), "%.6g", comparison.agreement[m]);
    row.push_back(value);
    row.push_back(std::to_string(comparison.epochs_to_converge[m]));
    row.push_back(std::to_string(comparison.reconverge_epochs[m]));
    row.push_back(std::to_string(cell.adaptations_started));
    row.push_back(std::to_string(cell.sensed_samples));
    row.push_back(std::to_string(cell.estimator_fallbacks));
    row.push_back(std::to_string(cell.stale_reports));
    std::snprintf(value, sizeof(value), "%.6g", cell.unfairness);
    row.push_back(value);
    std::snprintf(value, sizeof(value), "%.6g", cell.throughput_geomean);
    row.push_back(value);
    csv.WriteRow(row);
  }
  return Status::Ok();
}

}  // namespace copart
