#include "harness/replication.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"

namespace copart {
namespace {

ReplicatedMetric Summarize(const RunningStats& stats) {
  return ReplicatedMetric{.mean = stats.mean(),
                          .stddev = stats.stddev(),
                          .min = stats.min(),
                          .max = stats.max()};
}

}  // namespace

ReplicatedResult RunReplicatedExperiment(const WorkloadMix& mix,
                                         const PolicyFactory& factory,
                                         const ExperimentConfig& config,
                                         size_t replicas,
                                         uint64_t base_seed) {
  CHECK_GT(replicas, 0u);
  ReplicatedResult result;
  result.mix_name = mix.name;
  result.replicas = replicas;

  // Fan the replicas out; each gets an independent machine seed derived by
  // the Fork splitter, so the replica set is identical for every thread
  // count (and unchanged when replicas run in any order).
  const Rng seeder(base_seed);
  const std::vector<ExperimentResult> runs =
      ParallelMap<ExperimentResult>(
          config.parallel, replicas,
          [&](size_t replica) {
            ExperimentConfig replica_config = config;
            replica_config.machine.seed =
                seeder.Fork(replica).NextUint64();
            return RunExperiment(mix, factory, replica_config);
          },
          &result.stats);

  // Serial reduction in replica order keeps the Welford accumulation
  // bit-stable.
  RunningStats unfairness, throughput;
  for (const ExperimentResult& run : runs) {
    result.policy_name = run.policy_name;
    unfairness.Add(run.unfairness);
    throughput.Add(run.throughput_geomean);
  }
  result.unfairness = Summarize(unfairness);
  result.throughput_geomean = Summarize(throughput);
  return result;
}

}  // namespace copart
