#include "harness/replication.h"

#include "common/logging.h"
#include "common/stats.h"

namespace copart {
namespace {

ReplicatedMetric Summarize(const RunningStats& stats) {
  return ReplicatedMetric{.mean = stats.mean(),
                          .stddev = stats.stddev(),
                          .min = stats.min(),
                          .max = stats.max()};
}

}  // namespace

ReplicatedResult RunReplicatedExperiment(const WorkloadMix& mix,
                                         const PolicyFactory& factory,
                                         const ExperimentConfig& config,
                                         size_t replicas,
                                         uint64_t base_seed) {
  CHECK_GT(replicas, 0u);
  ReplicatedResult result;
  result.mix_name = mix.name;
  result.replicas = replicas;
  RunningStats unfairness, throughput;
  for (size_t replica = 0; replica < replicas; ++replica) {
    ExperimentConfig replica_config = config;
    // SplitMix-style spread so adjacent replicas get unrelated streams.
    replica_config.machine.seed =
        base_seed + replica * 0x9E3779B97F4A7C15ULL;
    const ExperimentResult run = RunExperiment(mix, factory, replica_config);
    result.policy_name = run.policy_name;
    unfairness.Add(run.unfairness);
    throughput.Add(run.throughput_geomean);
  }
  result.unfairness = Summarize(unfairness);
  result.throughput_geomean = Summarize(throughput);
  return result;
}

}  // namespace copart
