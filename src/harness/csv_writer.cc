#include "harness/csv_writer.h"

#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace copart {

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    return field;
  }
  std::string escaped = "\"";
  for (char c : field) {
    if (c == '"') {
      escaped += "\"\"";
    } else {
      escaped.push_back(c);
    }
  }
  escaped.push_back('"');
  return escaped;
}

CsvWriter::CsvWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    status_ = InvalidArgumentError("cannot open '" + path +
                                   "': " + std::strerror(errno));
  }
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void CsvWriter::WriteRow(std::span<const std::string> fields) {
  CHECK(ok()) << status_.ToString();
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      std::fputc(',', file_);
    }
    const std::string escaped = CsvEscape(fields[i]);
    std::fwrite(escaped.data(), 1, escaped.size(), file_);
  }
  std::fputc('\n', file_);
  ++rows_written_;
}

void CsvWriter::WriteRow(std::initializer_list<std::string> fields) {
  WriteRow(std::span<const std::string>(fields.begin(), fields.size()));
}

void CsvWriter::WriteNumericRow(const std::string& label,
                                std::span<const double> values) {
  std::vector<std::string> fields;
  fields.push_back(label);
  for (double value : values) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    fields.emplace_back(buffer);
  }
  WriteRow(fields);
}

}  // namespace copart
