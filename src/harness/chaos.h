// Randomized fault-schedule ("chaos") harness for the hardened controller.
//
// Each schedule builds a consolidated machine, lets the resource manager
// converge, then unleashes a storm: a random subset of the substrate's
// fault points (resctrl group operations, schemata writes, PMC reads) is
// armed with random probabilities and burst lengths, optionally alongside
// app churn. Every control period a set of safety invariants is asserted:
//
//   - the manager's system state stays structurally valid,
//   - every applied way mask is non-empty and contiguous (the CAT rule),
//   - every live admitted app stays accounted for by the manager,
//   - after the storm clears, the manager leaves the degraded phase.
//
// Everything derives deterministically from the schedule seed, so a failing
// schedule is reported by seed and replays bit-for-bit (the determinism
// contract of common/parallel.h; the suite fans out one schedule per cell).
// Exercised by tests/core_chaos_property_test.cc and `copartctl chaos`.
#ifndef COPART_HARNESS_CHAOS_H_
#define COPART_HARNESS_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "obs/obs.h"

namespace copart {

struct ChaosScheduleConfig {
  uint64_t seed = 0;

  // Phase lengths, in control periods.
  int warmup_periods = 30;    // Fault-free convergence before the storm.
  int storm_periods = 80;     // Faults armed (and apps churning).
  int recovery_periods = 240;  // Faults cleared; the manager must recover.

  // Consolidation size range (inclusive).
  int min_apps = 2;
  int max_apps = 5;

  // Randomly terminate / launch apps during the storm.
  bool allow_app_churn = true;

  double control_period_sec = 0.5;

  // Optional observability bundle for THIS schedule (audit log + trace of
  // the hardened manager, fault-injector hit counts absorbed into the
  // metrics at the end). Not owned; null = off. Suite fan-outs must give
  // each cell its own bundle — see the RunChaosSuite metrics overload.
  Observability* obs = nullptr;
};

struct ChaosScheduleResult {
  uint64_t seed = 0;
  bool passed = false;
  std::string failure;        // First violated invariant; empty when passed.
  int failure_period = -1;    // Global period index of the violation.

  // Telemetry aggregated over the run (for suite-level sanity assertions).
  uint64_t injected_failures = 0;
  uint64_t actuation_failures = 0;
  uint64_t rollbacks = 0;
  uint64_t degraded_entries = 0;
  uint64_t degraded_recoveries = 0;
  uint64_t quarantines = 0;
  bool ended_degraded = false;
};

// Runs one schedule to completion. Deterministic in config.seed.
ChaosScheduleResult RunChaosSchedule(const ChaosScheduleConfig& config);

struct ChaosSuiteConfig {
  uint64_t base_seed = 0xC0CA05ULL;
  int num_schedules = 200;
  // Template for every schedule; its seed is overwritten per index.
  ChaosScheduleConfig schedule;
};

struct ChaosSuiteResult {
  int num_schedules = 0;
  int num_passed = 0;
  std::vector<ChaosScheduleResult> failures;  // Failing schedules only.

  // Aggregates across all schedules (passed and failed).
  uint64_t injected_failures = 0;
  uint64_t actuation_failures = 0;
  uint64_t rollbacks = 0;
  uint64_t degraded_entries = 0;
  uint64_t degraded_recoveries = 0;
  uint64_t quarantines = 0;
};

// Fans the schedules out across the pool (one cell per schedule, seeded by
// index — bit-identical for every thread count) and aggregates.
ChaosSuiteResult RunChaosSuite(const ChaosSuiteConfig& config,
                               const ParallelConfig& parallel);

// Same fan-out, additionally collecting per-cell metrics: each schedule
// gets a private MetricsRegistry (manager counters + fault-injector hit
// counts) and the registries are merged into `metrics` serially in cell
// index order — the same reduction discipline as every other sweep, so the
// merged registry is bit-identical for every thread count. `metrics` may
// be null (degenerates to the plain overload).
ChaosSuiteResult RunChaosSuite(const ChaosSuiteConfig& config,
                               const ParallelConfig& parallel,
                               MetricsRegistry* metrics);

}  // namespace copart

#endif  // COPART_HARNESS_CHAOS_H_
