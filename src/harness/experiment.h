// Experiment runner: executes a workload mix under a resource allocation
// policy for a fixed duration and reports the paper's metrics.
//
// Methodology mirrors §3.3/§6.1: each mix runs for `duration_sec` (50 s in
// the paper); per-app IPS is instructions executed over the whole run
// divided by the duration (profiling/exploration transients included, as on
// real hardware); Slowdown_i uses the machine's solo-full-resource IPS as
// the Eq. 1 reference; Unfairness is Eq. 2; throughput is the geometric
// mean of per-app IPS (Fig. 17).
#ifndef COPART_HARNESS_EXPERIMENT_H_
#define COPART_HARNESS_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "core/policies.h"
#include "obs/obs.h"
#include "core/system_state.h"
#include "harness/mix.h"
#include "machine/machine_config.h"
#include "machine/simulated_machine.h"

namespace copart {

struct ExperimentConfig {
  MachineConfig machine;
  ResourcePool pool{.first_way = 0, .num_ways = 11, .max_mba_percent = 100};
  double duration_sec = 50.0;
  double control_period_sec = 0.5;
  // Cores per app; 0 = derive from the mix size (16 / count).
  uint32_t cores_per_app = 0;
  // Fan-out width for sweeps built on top of RunExperiment (the replication
  // matrix and the figure benches). A single experiment's control loop is
  // inherently sequential and ignores this.
  ParallelConfig parallel;
  // Optional observability bundle (DESIGN.md §8): attached to the CoPart
  // family's resource manager (other policies have no control loop to
  // trace); manager metrics are exported into it when the run ends. Not
  // owned; null = observability off.
  Observability* obs = nullptr;
};

// Creates the policy once machine/apps exist. Receives the resctrl and
// monitor instances that will drive the run.
using PolicyFactory = std::function<std::unique_ptr<ConsolidationPolicy>(
    Resctrl* resctrl, PerfMonitor* monitor, std::vector<AppId> apps,
    const ResourcePool& pool)>;

struct ExperimentResult {
  std::string policy_name;
  std::string mix_name;
  std::vector<std::string> app_names;
  std::vector<double> avg_ips;        // Whole-run per-app IPS.
  std::vector<double> solo_full_ips;  // Eq. 1 reference.
  std::vector<double> slowdowns;
  double unfairness = 0.0;
  double throughput_geomean = 0.0;
  // Mean getNextSystemState wall time (0 for static policies) — Fig. 16.
  double avg_exploration_us = 0.0;
  // Apps the policy declined to manage (ManagedPartitionPolicy only): they
  // ran in the default group. Per-app CoPart hits this past its way/CLOS
  // budget; clustered policies keep it at zero.
  size_t unmanaged_apps = 0;
};

// Runs `mix` under the policy produced by `factory`.
ExperimentResult RunExperiment(const WorkloadMix& mix,
                               const PolicyFactory& factory,
                               const ExperimentConfig& config);

// Standard policy factories, keyed by the paper's names.
PolicyFactory EqFactory();
PolicyFactory NoPartFactory();
PolicyFactory CoPartFactory(ResourceManagerParams params = {});
PolicyFactory CatOnlyFactory(ResourceManagerParams params = {});
PolicyFactory MbaOnlyFactory(ResourceManagerParams params = {});
// ST: runs the offline search (harness/static_oracle.h) at Start() time
// against a noise-free clone of the machine.
PolicyFactory StaticOracleFactory();
// UCP: the miss-minimizing utility-based partitioner (core/ucp_policy.h) —
// an extension baseline beyond the paper's four.
PolicyFactory UcpFactory();
// dCat: the feedback-driven dynamic LLC-only partitioner
// (core/dcat_policy.h), distilled from the paper's closest related work.
PolicyFactory DcatFactory();

// A ResourceManager driven by the named partition policy in
// params.partition_policy ("copart", "lfoc", "lfoc+", "cbp" — see
// core/partition_policy.h). Admission failures leave apps unmanaged in the
// default group (ExperimentResult::unmanaged_apps) instead of aborting, so
// per-app CoPart can be A/B'd on scenarios past its CLOS budget.
PolicyFactory PartitionPolicyFactory(ResourceManagerParams params);

// The paper's five policies in Fig. 12 order: EQ, ST, CAT-only, MBA-only,
// CoPart.
std::vector<std::pair<std::string, PolicyFactory>> StandardPolicies();

}  // namespace copart

#endif  // COPART_HARNESS_EXPERIMENT_H_
