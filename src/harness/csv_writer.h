// Minimal RFC-4180-style CSV output for experiment results (plotting-ready
// dumps from the benchmark binaries and the telemetry observer).
#ifndef COPART_HARNESS_CSV_WRITER_H_
#define COPART_HARNESS_CSV_WRITER_H_

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace copart {

// Quotes a field when it contains a comma, quote, or newline; embedded
// quotes are doubled.
std::string CsvEscape(const std::string& field);

class CsvWriter {
 public:
  // Opens `path` for writing (truncating). Check ok() before use.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  const Status& status() const { return status_; }

  // Writes one row; fields are escaped. CHECK-fails if the writer is bad.
  void WriteRow(std::span<const std::string> fields);
  void WriteRow(std::initializer_list<std::string> fields);

  // Convenience: formats doubles with %.6g.
  void WriteNumericRow(const std::string& label,
                       std::span<const double> values);

  size_t rows_written() const { return rows_written_; }

 private:
  std::FILE* file_ = nullptr;
  Status status_;
  size_t rows_written_ = 0;
};

}  // namespace copart

#endif  // COPART_HARNESS_CSV_WRITER_H_
