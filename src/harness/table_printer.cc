#include "harness/table_printer.h"

#include <algorithm>

#include "common/logging.h"

namespace copart {

std::string FormatFixed(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string FormatSci(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", precision, value);
  return buffer;
}

void PrintTable(const std::vector<std::string>& headers,
                const std::vector<std::vector<std::string>>& rows,
                std::FILE* out) {
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) {
    widths[c] = headers[c].size();
  }
  for (const std::vector<std::string>& row : rows) {
    CHECK_EQ(row.size(), headers.size());
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "| " : " | ",
                   static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::fprintf(out, " |\n");
  };
  auto print_rule = [&]() {
    for (size_t c = 0; c < widths.size(); ++c) {
      std::fprintf(out, "%s", c == 0 ? "|-" : "-|-");
      for (size_t i = 0; i < widths[c]; ++i) {
        std::fputc('-', out);
      }
    }
    std::fprintf(out, "-|\n");
  };
  print_row(headers);
  print_rule();
  for (const std::vector<std::string>& row : rows) {
    print_row(row);
  }
}

void PrintHeatmap(const std::string& caption,
                  const std::vector<std::string>& row_labels,
                  const std::vector<std::string>& col_labels,
                  const std::vector<std::vector<double>>& values,
                  int precision, std::FILE* out) {
  CHECK_EQ(values.size(), row_labels.size());
  std::fprintf(out, "%s\n", caption.c_str());
  std::vector<std::string> headers;
  headers.push_back("");
  for (const std::string& label : col_labels) {
    headers.push_back(label);
  }
  std::vector<std::vector<std::string>> rows;
  for (size_t r = 0; r < values.size(); ++r) {
    CHECK_EQ(values[r].size(), col_labels.size());
    std::vector<std::string> row;
    row.push_back(row_labels[r]);
    for (double value : values[r]) {
      row.push_back(FormatFixed(value, precision));
    }
    rows.push_back(std::move(row));
  }
  PrintTable(headers, rows, out);
}

std::string JoinParen(const std::vector<uint32_t>& values) {
  std::string result = "(";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      result += ",";
    }
    result += std::to_string(values[i]);
  }
  result += ")";
  return result;
}

}  // namespace copart
