#include "harness/serve.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/resource_manager.h"
#include "core/system_state.h"
#include "harness/csv_writer.h"
#include "harness/whatif.h"
#include "machine/simulated_machine.h"
#include "metrics/fairness.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "serve/serve_engine.h"

namespace copart {
namespace {

std::string FormatG6(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return std::string(buf);
}

std::string Format17G(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

// Measured capability table for the what-if path: LC IPS at each way width
// from a snapshot/rollback epoch solve against the colocated batch set.
// Index 0 is unused (the governor never asks for 0 ways).
std::vector<double> WhatIfCapabilityTable(const ServeScenarioConfig& config,
                                          size_t lc_index) {
  const ServeLcSpec& spec = config.lc_apps[lc_index];
  std::vector<WorkloadDescriptor> workloads;
  WorkloadDescriptor lc = spec.workload;
  lc.num_threads = spec.cores;
  workloads.push_back(std::move(lc));
  for (const ServeBatchSpec& batch : config.batch_apps) {
    WorkloadDescriptor b = batch.workload;
    b.num_threads = batch.cores;
    workloads.push_back(std::move(b));
  }
  WhatIfEvaluator evaluator(workloads, config.machine);

  const uint32_t total_ways = config.machine.llc.num_ways;
  const size_t num_batch = config.batch_apps.size();
  // Every app needs >= 1 way in a valid state, so widths beyond
  // total - num_batch reuse the widest evaluable row.
  const uint32_t max_lc_ways =
      total_ways > num_batch ? total_ways - static_cast<uint32_t>(num_batch)
                             : 1;
  const ResourcePool pool{.first_way = 0,
                          .num_ways = total_ways,
                          .max_mba_percent = MbaLevel::kMax};
  std::vector<double> table(total_ways + 1, 0.0);
  for (uint32_t ways = 1; ways <= total_ways; ++ways) {
    const uint32_t lc_ways = std::min(ways, max_lc_ways);
    std::vector<AppAllocation> allocations;
    allocations.push_back(
        AppAllocation{.llc_ways = lc_ways, .mba_level = MbaLevel()});
    const uint32_t rest = total_ways - lc_ways;
    for (size_t b = 0; b < num_batch; ++b) {
      const uint32_t share = static_cast<uint32_t>(
          rest / num_batch + (b < rest % num_batch ? 1 : 0));
      allocations.push_back(AppAllocation{.llc_ways = std::max(share, 1u),
                                          .mba_level = MbaLevel()});
    }
    const WhatIfOutcome outcome =
        evaluator.Evaluate(SystemState(pool, std::move(allocations)));
    table[ways] = outcome.predicted_ips[0];
  }
  return table;
}

void AppendComparisonCell(std::ostringstream& out,
                          const ServeScenarioResult& result) {
  out << "  \"" << ServeModeName(result.mode) << "\": {\n";
  const ServeLcResult& lc = result.lc.front();
  out << "    \"lc_name\": \"" << lc.name << "\",\n";
  out << "    \"arrivals\": " << lc.arrivals << ",\n";
  out << "    \"completions\": " << lc.completions << ",\n";
  out << "    \"drops\": " << lc.drops << ",\n";
  out << "    \"queue_depth_end\": " << lc.queue_depth_end << ",\n";
  out << "    \"p50_ms\": " << Format17G(lc.p50_ms) << ",\n";
  out << "    \"p95_ms\": " << Format17G(lc.p95_ms) << ",\n";
  out << "    \"p99_ms\": " << Format17G(lc.p99_ms) << ",\n";
  out << "    \"slo_violation_fraction\": "
      << Format17G(lc.slo_violation_fraction) << ",\n";
  out << "    \"mean_batch_unfairness\": "
      << Format17G(result.mean_batch_unfairness) << ",\n";
  out << "    \"run_batch_unfairness\": "
      << Format17G(result.run_batch_unfairness) << ",\n";
  out << "    \"copart_adaptations\": " << result.copart_adaptations << ",\n";
  out << "    \"slo_resizes\": " << result.slo_resizes << ",\n";
  // Every 10th control period: enough to pin the burst trajectory (ways
  // widening, MBA protection, queue drain) without a bulky golden.
  out << "    \"samples\": [\n";
  for (size_t i = 0; i < result.samples.size(); i += 10) {
    const ServeSample& s = result.samples[i];
    out << "      [" << Format17G(s.time) << ", "
        << Format17G(s.offered_rps) << ", " << Format17G(s.p95_ms)
        << ", " << s.queue_depth << ", " << s.lc_ways << ", "
        << s.batch_max_mba << ", \"" << s.phase << "\"]"
        << (i + 10 < result.samples.size() ? "," : "") << "\n";
  }
  out << "    ]\n";
  out << "  }";
}

}  // namespace

const char* ServeModeName(ServeMode mode) {
  switch (mode) {
    case ServeMode::kCopartSlo:
      return "copart_slo";
    case ServeMode::kEqualShare:
      return "equal_share";
    case ServeMode::kNoPart:
      return "no_part";
  }
  return "unknown";
}

double PredictLcCapabilityIps(const WorkloadDescriptor& lc, uint32_t lc_cores,
                              uint32_t ways, const MachineConfig& machine) {
  const double capacity = static_cast<double>(machine.llc.WayBytes()) * ways;
  const double miss_ratio = lc.reuse_profile.MissRatio(
      static_cast<uint64_t>(capacity), machine.mrc_mode);
  // Consolidation keeps the memory bus near saturation (the batch apps
  // soak up whatever bandwidth the LC app leaves), so plan against the
  // machine's full queueing-delay stretch rather than a contention-free
  // bus — the same worst case the simulator's pass 2 converges to.
  const double contention = 1.0 + machine.queueing_delay_factor;
  const double cpi =
      lc.cpi_exec + lc.accesses_per_instr * miss_ratio * contention *
                        lc.mem_latency_cycles / lc.mlp;
  return lc_cores * machine.core_freq_hz / cpi;
}

ServeScenarioResult RunServeScenario(const ServeScenarioConfig& config) {
  CHECK(!config.lc_apps.empty()) << "serve scenario needs at least one LC app";
  SimulatedMachine machine(config.machine);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);

  // LC apps: launch the surrogate and build its discrete-event server.
  // Server Rng streams are forked from the scenario seed by LC index only,
  // so every mode replays the identical arrival/service draw sequences.
  struct LcRuntime {
    AppId id{0};
    std::string name;
    double ipr = 0.0;
    double slo_ms = 0.0;
    std::unique_ptr<LcServer> server;
    size_t violations = 0;
  };
  const Rng root(config.seed);
  std::vector<LcRuntime> lcs;
  for (size_t i = 0; i < config.lc_apps.size(); ++i) {
    const ServeLcSpec& spec = config.lc_apps[i];
    Result<AppId> app = machine.LaunchApp(spec.workload, spec.cores);
    CHECK(app.ok()) << app.status().ToString();
    LcRuntime lc;
    lc.id = *app;
    lc.name = spec.workload.short_name.empty() ? spec.workload.name
                                               : spec.workload.short_name;
    for (const LcRuntime& other : lcs) {
      if (other.name == lc.name) {
        lc.name += "_" + std::to_string(i);
        break;
      }
    }
    lc.ipr = spec.instructions_per_request > 0.0
                 ? spec.instructions_per_request
                 : spec.workload.instructions_per_request;
    lc.slo_ms =
        spec.slo_p95_ms > 0.0 ? spec.slo_p95_ms : spec.workload.slo_p95_ms;
    CHECK_GT(lc.ipr, 0.0) << lc.name << ": no instructions_per_request";
    CHECK_GT(lc.slo_ms, 0.0) << lc.name << ": no slo_p95_ms";
    LcServerConfig server_config;
    server_config.name = lc.name;
    server_config.arrival = spec.arrival;
    server_config.instructions_per_request = lc.ipr;
    server_config.exponential_service = spec.exponential_service;
    server_config.queue_capacity = spec.queue_capacity;
    lc.server = std::make_unique<LcServer>(server_config,
                                           root.Fork(static_cast<uint64_t>(i)));
    lcs.push_back(std::move(lc));
  }

  std::vector<AppId> batch;
  for (const ServeBatchSpec& spec : config.batch_apps) {
    Result<AppId> app = machine.LaunchApp(spec.workload, spec.cores);
    CHECK(app.ok()) << app.status().ToString();
    batch.push_back(*app);
  }
  std::vector<double> batch_solo_full;
  for (AppId app : batch) {
    batch_solo_full.push_back(machine.SoloFullResourceIps(
        machine.Descriptor(app), machine.AppCores(app)));
  }

  const uint32_t total_ways = config.machine.llc.num_ways;
  const size_t total_apps = lcs.size() + batch.size();

  // Static per-mode allocation state for the sampled series.
  uint32_t static_lc_ways = total_ways;
  uint32_t static_batch_mba = MbaLevel::kMax;

  std::unique_ptr<ResourceManager> manager;
  if (config.mode == ServeMode::kCopartSlo) {
    ResourceManagerParams params = config.copart_params;
    params.control_period_sec = config.control_period_sec;
    params.slo.enabled = true;
    manager = std::make_unique<ResourceManager>(&resctrl, &monitor, params);
    manager->SetObservability(config.obs);
    for (size_t i = 0; i < lcs.size(); ++i) {
      const ServeLcSpec& spec = config.lc_apps[i];
      LcAppModel model;
      model.slo_p95_ms = lcs[i].slo_ms;
      model.instructions_per_request = lcs[i].ipr;
      if (spec.whatif_capability) {
        auto table = std::make_shared<const std::vector<double>>(
            WhatIfCapabilityTable(config, i));
        model.capability_ips = [table](uint32_t ways) {
          const size_t index =
              std::min<size_t>(ways, table->size() - 1);
          return index == 0 ? 0.0 : (*table)[index];
        };
      } else {
        model.capability_ips = [desc = spec.workload, cores = spec.cores,
                                mc = config.machine](uint32_t ways) {
          return PredictLcCapabilityIps(desc, cores, ways, mc);
        };
      }
      model.initial_offered_rps = ArrivalRateAt(spec.arrival, 0.0);
      Status status = manager->SetLatencyCriticalApp(lcs[i].id, model);
      CHECK(status.ok()) << status.ToString();
    }
    for (AppId app : batch) {
      Status status = manager->AddApp(app);
      CHECK(status.ok()) << status.ToString();
    }
  } else if (config.mode == ServeMode::kEqualShare) {
    // One static equal split of the whole machine across every app, LC and
    // batch alike — the paper's EqualShare baseline.
    const ResourcePool pool{.first_way = 0,
                            .num_ways = total_ways,
                            .max_mba_percent = MbaLevel::kMax};
    const SystemState eq = SystemState::EqualShareThrottled(pool, total_apps);
    size_t slot = 0;
    auto install = [&](AppId app) {
      Result<ResctrlGroupId> group =
          resctrl.CreateGroup("eq_" + std::to_string(app.value()));
      CHECK(group.ok()) << group.status().ToString();
      Status status = resctrl.AssignApp(*group, app);
      CHECK(status.ok()) << status.ToString();
      status = resctrl.SetCacheMask(*group, eq.WayMaskBits(slot));
      CHECK(status.ok()) << status.ToString();
      status = resctrl.SetMbaPercent(*group,
                                     eq.allocation(slot).mba_level.percent());
      CHECK(status.ok()) << status.ToString();
      ++slot;
    };
    for (const LcRuntime& lc : lcs) {
      install(lc.id);
    }
    for (AppId app : batch) {
      install(app);
    }
    static_lc_ways =
        static_cast<uint32_t>(std::popcount(eq.WayMaskBits(0)));
    static_batch_mba = eq.allocation(total_apps - 1).mba_level.percent();
  }
  // kNoPart: every app stays in the default CLOS (all ways, MBA 100).

  ServeScenarioResult result;
  result.mode = config.mode;
  const double dt = config.control_period_sec;
  const int periods = static_cast<int>(
      std::llround(config.duration_sec / config.control_period_sec));
  CHECK_GT(periods, 0);
  result.samples.reserve(static_cast<size_t>(periods));
  RunningStats unfairness_stats;

  // The LC surrogate only consumes the IPS its offered load demands; the
  // leftover capability is headroom, not extra contention.
  for (const LcRuntime& lc : lcs) {
    const size_t i = static_cast<size_t>(&lc - lcs.data());
    machine.SetAppRequiredIps(
        lc.id, ArrivalRateAt(config.lc_apps[i].arrival, 0.0) * lc.ipr);
  }

  for (int period = 0; period < periods; ++period) {
    machine.AdvanceTime(dt);

    // Serve the epoch just simulated at each LC app's effective rate.
    EpochServeStats primary;
    for (size_t i = 0; i < lcs.size(); ++i) {
      const double capability = machine.LastEpoch(lcs[i].id).ips_capability;
      const EpochServeStats stats = lcs[i].server->AdvanceEpoch(dt, capability);
      const bool stalled = stats.completions == 0 && stats.queue_depth_end > 0;
      if (stats.p95_ms > lcs[i].slo_ms || stalled) {
        ++lcs[i].violations;
      }
      if (manager != nullptr) {
        // Close the governor's learning loop: the decision that shaped this
        // epoch is still the manager's current plan, so learned governors
        // can attribute the measured p95 to it. Threshold ignores this.
        manager->ReportLcOutcome(
            lcs[i].id, stats.p95_ms, stalled,
            config.lc_apps[i].workload.PhaseIndexAt(machine.now()));
      }
      if (i == 0) {
        primary = stats;
      }
    }

    // Sample the period before re-planning, so the series reflects the
    // allocation the epoch was actually served under.
    ServeSample sample;
    sample.time = machine.now();
    sample.offered_rps = primary.offered_rps;
    sample.p95_ms = primary.p95_ms;
    sample.p99_ms = primary.p99_ms;
    sample.queue_depth = primary.queue_depth_end;
    if (manager != nullptr) {
      sample.lc_ways = manager->LcWays(lcs[0].id);
      sample.batch_max_mba = manager->pool().max_mba_percent;
      sample.phase = ResourceManager::PhaseName(manager->phase());
    } else {
      sample.lc_ways = static_lc_ways;
      sample.batch_max_mba = static_batch_mba;
      sample.phase = ServeModeName(config.mode);
    }
    if (!batch.empty()) {
      std::vector<double> slowdowns;
      slowdowns.reserve(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        slowdowns.push_back(
            Slowdown(batch_solo_full[i], machine.LastEpoch(batch[i]).ips));
      }
      sample.batch_unfairness = Unfairness(slowdowns);
      unfairness_stats.Add(sample.batch_unfairness);
    }
    result.samples.push_back(std::move(sample));

    // Plan the next epoch from the offered load at its start (zero-lag:
    // the governor sees the same rate the generators will draw from).
    const double now = machine.now();
    for (size_t i = 0; i < lcs.size(); ++i) {
      const double rate = ArrivalRateAt(config.lc_apps[i].arrival, now);
      machine.SetAppRequiredIps(lcs[i].id, rate * lcs[i].ipr);
      if (manager != nullptr) {
        manager->SetLcOfferedLoad(lcs[i].id, rate);
      }
    }
    if (manager != nullptr) {
      manager->Tick();
    }
  }

  for (const LcRuntime& lc : lcs) {
    ServeLcResult r;
    r.name = lc.name;
    r.slo_p95_ms = lc.slo_ms;
    r.arrivals = lc.server->total_arrivals();
    r.completions = lc.server->total_completions();
    r.drops = lc.server->total_drops();
    r.queue_depth_end = lc.server->queue_depth();
    const LatencySketch& sketch = lc.server->cumulative_latency();
    if (sketch.count() > 0) {
      r.p50_ms = sketch.Quantile(0.50) * 1e3;
      r.p95_ms = sketch.Quantile(0.95) * 1e3;
      r.p99_ms = sketch.Quantile(0.99) * 1e3;
    }
    r.slo_violation_fraction =
        static_cast<double>(lc.violations) / static_cast<double>(periods);
    result.lc.push_back(std::move(r));
  }
  result.mean_batch_unfairness = batch.empty() ? 0.0 : unfairness_stats.mean();
  if (!batch.empty()) {
    // Whole-run batch unfairness with the same Eq. 1/Eq. 2 methodology as
    // harness/experiment.cc: avg IPS over the run vs. solo-full reference.
    std::vector<double> run_slowdowns;
    run_slowdowns.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const double avg_ips =
          machine.Counters(batch[i]).instructions / config.duration_sec;
      run_slowdowns.push_back(Slowdown(batch_solo_full[i], avg_ips));
    }
    result.run_batch_unfairness = Unfairness(run_slowdowns);
  }
  result.copart_adaptations =
      manager != nullptr ? manager->adaptations_started() : 0;
  result.slo_resizes = manager != nullptr ? manager->slo_resizes() : 0;

  if (manager != nullptr) {
    manager->ExportMetrics(ObsMetrics(config.obs));
    if (MetricsRegistry* metrics = ObsMetrics(config.obs)) {
      for (const ServeLcResult& r : result.lc) {
        const std::string prefix = "copart.serve." + r.name;
        metrics->GetCounter(prefix + ".arrivals")->Increment(r.arrivals);
        metrics->GetCounter(prefix + ".completions")->Increment(r.completions);
        metrics->GetCounter(prefix + ".drops")->Increment(r.drops);
        metrics->GetGauge(prefix + ".queue_depth_end")
            ->Set(static_cast<double>(r.queue_depth_end));
        metrics->GetGauge(prefix + ".p50_ms")->Set(r.p50_ms);
        metrics->GetGauge(prefix + ".p95_ms")->Set(r.p95_ms);
        metrics->GetGauge(prefix + ".p99_ms")->Set(r.p99_ms);
        metrics->GetGauge(prefix + ".slo_violation_fraction")
            ->Set(r.slo_violation_fraction);
      }
    }
  }
  return result;
}

ServeComparisonResult RunServeComparison(const ServeScenarioConfig& config,
                                         const ParallelConfig& parallel) {
  constexpr ServeMode kModes[3] = {ServeMode::kCopartSlo,
                                   ServeMode::kEqualShare, ServeMode::kNoPart};
  std::vector<ServeScenarioResult> cells = ParallelMap<ServeScenarioResult>(
      parallel, 3, [&](size_t i) {
        ServeScenarioConfig cell = config;
        cell.mode = kModes[i];
        if (cell.mode != ServeMode::kCopartSlo) {
          cell.obs = nullptr;  // The bundle belongs to the CoPart cell.
        }
        return RunServeScenario(cell);
      });
  return ServeComparisonResult{std::move(cells[0]), std::move(cells[1]),
                               std::move(cells[2])};
}

std::string SerializeServeComparison(const ServeComparisonResult& comparison) {
  std::ostringstream out;
  out << "{\n";
  AppendComparisonCell(out, comparison.copart);
  out << ",\n";
  AppendComparisonCell(out, comparison.equal_share);
  out << ",\n";
  AppendComparisonCell(out, comparison.no_part);
  out << "\n}\n";
  return out.str();
}

Status WriteServeCsv(const ServeScenarioResult& result,
                     const std::string& path) {
  CsvWriter writer(path);
  if (!writer.ok()) {
    return writer.status();
  }
  writer.WriteRow({"time", "offered_rps", "p95_ms", "p99_ms", "queue_depth",
                   "lc_ways", "batch_max_mba", "batch_unfairness", "phase"});
  for (const ServeSample& s : result.samples) {
    writer.WriteRow({FormatG6(s.time), FormatG6(s.offered_rps),
                     FormatG6(s.p95_ms), FormatG6(s.p99_ms),
                     std::to_string(s.queue_depth), std::to_string(s.lc_ways),
                     std::to_string(s.batch_max_mba),
                     FormatG6(s.batch_unfairness), s.phase});
  }
  return writer.status();
}

ServeScenarioConfig Section63ServeScenario() {
  ServeScenarioConfig config;
  config.duration_sec = 30.0;
  config.control_period_sec = 0.1;
  config.seed = 42;

  ServeLcSpec lc;
  lc.workload = Memcached();
  lc.cores = 8;
  lc.arrival.kind = ArrivalKind::kBurst;
  lc.arrival.base_rate_rps = 75000.0;
  // Fig. 15's shape compressed: low load, a burst past what the static
  // baselines can serve within the SLO, back to low load.
  // 180 krps exceeds the ~150 krps a static equal share (or the contended
  // default CLOS) can sustain, but stays within what the SLO governor can
  // buy by widening the LC slice.
  lc.arrival.burst_phases = {{5.0, 1.0}, {15.0, 2.4}, {10.0, 1.0}};
  config.lc_apps.push_back(std::move(lc));

  config.batch_apps.push_back(ServeBatchSpec{WordCount(), 4});
  config.batch_apps.push_back(ServeBatchSpec{Kmeans(), 4});

  // Batch MBA protection engages during the burst (§6.3: CoPart throttles
  // the batch slice while memcached rides the load step).
  config.copart_params.slo.protect_rps_threshold = 150000.0;
  config.copart_params.slo.batch_mba_protect_percent = 50;
  return config;
}

}  // namespace copart
