// Partition-policy A/B harness (DESIGN.md §14).
//
// Runs every registered partition policy (core/partition_policy.h:
// per-app CoPart plus the clustered LFOC / LFOC+ / CBP rivals) over the
// same scenarios and reports the three headline metrics side by side:
// unfairness (Eq. 2), throughput (geomean IPS), and the SLO-violation
// rate (fraction of apps slowed beyond a threshold). Scenarios are the
// paper's seven mix families plus a many-apps consolidation (48 single-core
// apps on a 64-core box with 16 CLOSes) that per-app CoPart structurally
// cannot cover — its way/CLOS admission leaves most of the apps unmanaged,
// which the table surfaces via the `unmanaged` column.
//
// Cells fan out across ParallelConfig threads with the usual determinism
// contract (each cell depends only on its index; reduction is serial in
// index order), so the serialized result is bit-identical for every
// --threads value — pinned by tests/harness_policy_ab_golden_test.cc and
// the conformance suite.
#ifndef COPART_HARNESS_POLICY_AB_H_
#define COPART_HARNESS_POLICY_AB_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "harness/experiment.h"
#include "harness/mix.h"

namespace copart {

struct PolicyAbScenario {
  std::string name;
  WorkloadMix mix;
  MachineConfig machine;
  ResourcePool pool{.first_way = 0, .num_ways = 11, .max_mba_percent = 100};
  // 0 = derive from machine cores / mix size (RunExperiment's rule).
  uint32_t cores_per_app = 0;
};

struct PolicyAbConfig {
  // Registry names to compare; defaults to every registered policy.
  std::vector<std::string> policies{"copart", "lfoc", "lfoc+", "cbp"};
  // The paper's seven mix families at `paper_mix_app_count` apps each.
  bool include_paper_mixes = true;
  size_t paper_mix_app_count = 6;
  // App count of the many-apps scenario; 0 disables it.
  size_t many_apps = 48;
  double duration_sec = 50.0;
  double control_period_sec = 0.5;
  // An app counts as SLO-violating when its Eq. 1 slowdown exceeds this.
  double slo_slowdown_threshold = 2.0;
  ParallelConfig parallel;
};

struct PolicyAbCell {
  std::string scenario;
  std::string policy;
  size_t num_apps = 0;
  // Apps the policy's admission refused (ran unmanaged in CLOS 0).
  size_t unmanaged_apps = 0;
  double unfairness = 0.0;
  double throughput_geomean = 0.0;
  // Fraction of apps with slowdown > slo_slowdown_threshold.
  double slo_violation_rate = 0.0;
};

struct PolicyAbResult {
  std::vector<PolicyAbCell> cells;  // Scenario-major, policy-minor order.
  SweepStats stats;
};

// The 48-on-64-core consolidation: the Table 2 roster cycled app_count
// times, one core each, on a machine scaled to 4x the paper box (64 cores,
// 112 GB/s) but with the same 11-way LLC and 16 CLOSes — capacity and CLOS
// count are exactly what commodity parts do NOT scale with core count.
PolicyAbScenario ManyAppsScenario(size_t app_count = 48);

// The scenario list RunPolicyAb executes for `config`.
std::vector<PolicyAbScenario> PolicyAbScenarios(const PolicyAbConfig& config);

// Runs |scenarios| x |policies| cells across config.parallel threads.
PolicyAbResult RunPolicyAb(const PolicyAbConfig& config);

// Full-precision (%.17g) serialization, the golden/determinism surface.
std::string PolicyAbToJson(const PolicyAbResult& result);

// Aligned table plus a verdict line for the many-apps scenario.
void PrintPolicyAbTable(const PolicyAbResult& result, std::FILE* out = stdout);

}  // namespace copart

#endif  // COPART_HARNESS_POLICY_AB_H_
