// Dynamic server consolidation case study (paper §6.3, Fig. 15).
//
// A latency-critical memcached surrogate shares the machine with two batch
// jobs (Word Count and Kmeans surrogates). The LC app is served by the
// discrete-event engine in src/serve: its offered load follows the paper's
// step trace and its measured per-epoch p95 comes from actually queueing
// and completing requests at the service rate the current CLOS mask + MBA
// level sustains. Two managers for the machine:
//
//   use_copart = true   — ResourceManager in SLO mode: the SLO governor
//                         sizes the LC slice (ways first, then batch MBA
//                         protection above high_load_rps) and CoPart runs
//                         fairness allocation for the batch apps over the
//                         remaining pool, re-adapting on every pool change.
//   use_copart = false  — the paper's EqualShare baseline: every app,
//                         including memcached, gets a static equal share
//                         of ways and MBA. No SLO awareness, so the LC
//                         app's p95 blows through the SLO during the
//                         load burst while CoPart rides it out.
//
// The offered load follows the paper's trace shape: low load initially,
// a step up at t=99.4 s, and a step back down at t=299.4 s.
#ifndef COPART_HARNESS_CASE_STUDY_H_
#define COPART_HARNESS_CASE_STUDY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/copart_params.h"
#include "machine/machine_config.h"
#include "obs/obs.h"

namespace copart {

struct CaseStudyConfig {
  MachineConfig machine;
  double duration_sec = 400.0;
  double control_period_sec = 0.5;
  // Seed for the serve engine's arrival/service streams.
  uint64_t seed = 42;
  // (start time, requests/s) steps; Fig. 15's trace.
  std::vector<std::pair<double, double>> load_steps = {
      {0.0, 75000.0}, {99.4, 150000.0}, {299.4, 75000.0}};
  // SLO: 95th percentile latency below 1 ms (§6.3).
  double slo_p95_ms = 1.0;
  // Work per memcached request (instructions), converting offered load into
  // required IPS and IPS capability into a service rate.
  double instructions_per_request = 60000.0;
  // Offered load at or above which the SLO governor also caps the batch MBA
  // ceiling to protect the LC app's memory traffic.
  double high_load_rps = 100000.0;
  uint32_t batch_mba_ceiling_high_load = 50;
  // true: CoPart SLO mode; false: whole-machine EqualShare baseline.
  bool use_copart = true;
  ResourceManagerParams copart_params;
  // Optional observability bundle attached to the CoPart manager (ignored
  // in EQ mode). Not owned; null = off.
  Observability* obs = nullptr;
};

struct CaseStudySample {
  double time = 0.0;
  double load_rps = 0.0;      // Configured step rate for this period.
  double p95_ms = 0.0;        // Measured over this epoch's completions.
  uint64_t queue_depth = 0;
  uint32_t lc_ways = 0;
  uint32_t batch_max_mba = 100;
  // Instantaneous unfairness across the batch apps (ground-truth slowdowns).
  double batch_unfairness = 0.0;
  std::string copart_phase;
};

struct CaseStudyResult {
  std::vector<CaseStudySample> samples;
  double mean_batch_unfairness = 0.0;
  double slo_violation_fraction = 0.0;
  uint64_t copart_adaptations = 0;
  // Serve-engine run aggregates for the LC app.
  uint64_t lc_arrivals = 0;
  uint64_t lc_completions = 0;
  uint64_t lc_drops = 0;
  double lc_run_p95_ms = 0.0;  // Cumulative-sketch p95 over the whole run.
};

CaseStudyResult RunCaseStudy(const CaseStudyConfig& config);

}  // namespace copart

#endif  // COPART_HARNESS_CASE_STUDY_H_
