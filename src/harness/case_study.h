// Dynamic server consolidation case study (paper §6.3, Fig. 15).
//
// A latency-critical memcached surrogate shares the machine with two batch
// jobs (Word Count and Kmeans surrogates). An outer dynamic server resource
// manager — in the spirit of Heracles [24] / the paper's [15] — sizes the
// LC slice each period from the offered load and an M/M/1-style p95 model,
// and hands the remaining ways plus an MBA ceiling to the batch slice as a
// ResourcePool. The batch slice is managed either by CoPart (which detects
// every pool change and re-adapts) or by the EQ baseline.
//
// The offered load follows the paper's trace shape: low load initially,
// a step up at t=99.4 s, and a step back down at t=299.4 s.
#ifndef COPART_HARNESS_CASE_STUDY_H_
#define COPART_HARNESS_CASE_STUDY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/copart_params.h"
#include "machine/machine_config.h"
#include "obs/obs.h"

namespace copart {

struct CaseStudyConfig {
  MachineConfig machine;
  double duration_sec = 400.0;
  double control_period_sec = 0.5;
  // (start time, requests/s) steps; Fig. 15's trace.
  std::vector<std::pair<double, double>> load_steps = {
      {0.0, 75000.0}, {99.4, 150000.0}, {299.4, 75000.0}};
  // SLO: 95th percentile latency below 1 ms (§6.3).
  double slo_p95_ms = 1.0;
  // Work per memcached request (instructions), converting offered load into
  // required IPS.
  double instructions_per_request = 60000.0;
  // Queueing model: p95 = base * (1 + shape * rho / (1 - rho)).
  double base_p95_ms = 0.15;
  double queueing_shape = 0.6;
  // Target utilization the outer manager provisions the LC slice for.
  double target_utilization = 0.70;
  // Offered load above which the outer manager also caps the batch MBA
  // ceiling to protect the LC app's memory traffic.
  double high_load_rps = 100000.0;
  uint32_t batch_mba_ceiling_high_load = 50;
  // true: CoPart manages the batch slice; false: EQ split of the slice.
  bool use_copart = true;
  ResourceManagerParams copart_params;
  // Optional observability bundle attached to the batch slice's CoPart
  // manager (ignored in EQ mode). Not owned; null = off.
  Observability* obs = nullptr;
};

struct CaseStudySample {
  double time = 0.0;
  double load_rps = 0.0;
  double p95_ms = 0.0;
  uint32_t lc_ways = 0;
  uint32_t batch_max_mba = 100;
  // Instantaneous unfairness across the batch apps (ground-truth slowdowns).
  double batch_unfairness = 0.0;
  std::string copart_phase;
};

struct CaseStudyResult {
  std::vector<CaseStudySample> samples;
  double mean_batch_unfairness = 0.0;
  double slo_violation_fraction = 0.0;
  uint64_t copart_adaptations = 0;
};

CaseStudyResult RunCaseStudy(const CaseStudyConfig& config);

}  // namespace copart

#endif  // COPART_HARNESS_CASE_STUDY_H_
