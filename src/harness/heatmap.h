// Characterization sweeps (paper §4, Figs. 1-6).
//
//   - SweepSoloPerformance: one benchmark alone on the machine, IPS at every
//     (LLC ways, MBA level) system state, normalized to the best state —
//     the per-benchmark heatmaps of Figs. 1-3.
//   - SweepMixFairness: a four-app mix under enumerated static LLC and MBA
//     partitionings, unfairness normalized to the no-partitioning run —
//     the fairness heatmaps of Figs. 4-6.
#ifndef COPART_HARNESS_HEATMAP_H_
#define COPART_HARNESS_HEATMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "harness/mix.h"
#include "machine/machine_config.h"
#include "workload/workload.h"

namespace copart {

struct SoloHeatmap {
  std::string workload;
  std::vector<uint32_t> way_counts;    // Rows (1..L).
  std::vector<uint32_t> mba_percents;  // Columns (10..100).
  // normalized_ips[w][m]: IPS at (way_counts[w], mba_percents[m]) divided by
  // the maximum over the whole grid.
  std::vector<std::vector<double>> normalized_ips;
  // Fan-out accounting for the sweep that produced this heatmap.
  SweepStats stats;

  // Smallest way count achieving >= `fraction` of peak at MBA 100 —
  // the "ways for 90% performance" threshold quoted in §4.1.
  uint32_t MinWaysForFraction(double fraction) const;
  // Smallest MBA level achieving >= `fraction` of peak at full ways.
  uint32_t MinMbaForFraction(double fraction) const;
};

// Every (ways, MBA) cell is simulated on its own machine instance (the
// epoch model is memoryless, so this matches the paper's serial
// methodology) and cells fan out across `parallel` threads; results are
// bit-identical for every thread count.
SoloHeatmap SweepSoloPerformance(const WorkloadDescriptor& descriptor,
                                 const MachineConfig& machine_config,
                                 uint32_t num_cores = 4,
                                 const ParallelConfig& parallel = {});

struct FairnessGrid {
  std::string mix_name;
  std::vector<std::string> app_names;
  // Row/column labels: one ways-per-app (resp. MBA-level-per-app) vector
  // per grid row/column, e.g. {5,3,2,1}.
  std::vector<std::vector<uint32_t>> llc_configs;
  std::vector<std::vector<uint32_t>> mba_configs;
  // unfairness[l][m], normalized to the unpartitioned run of the same mix.
  std::vector<std::vector<double>> normalized_unfairness;
  double nopart_unfairness = 0.0;
  // Fan-out accounting for the sweep that produced this grid.
  SweepStats stats;
};

FairnessGrid SweepMixFairness(
    const WorkloadMix& mix,
    const std::vector<std::vector<uint32_t>>& llc_configs,
    const std::vector<std::vector<uint32_t>>& mba_configs,
    const MachineConfig& machine_config, uint32_t cores_per_app = 4,
    const ParallelConfig& parallel = {});

// Representative partitioning settings for a four-app characterization mix
// (mirroring the axes of Figs. 4-6, including the paper's called-out
// configurations such as LLC (5,3,2,1) and MBA (20,10,100,10)).
std::vector<std::vector<uint32_t>> DefaultLlcConfigs();
std::vector<std::vector<uint32_t>> DefaultMbaConfigs();

}  // namespace copart

#endif  // COPART_HARNESS_HEATMAP_H_
