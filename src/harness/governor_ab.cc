#include "harness/governor_ab.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "harness/csv_writer.h"
#include "harness/table_printer.h"
#include "slo/slo_governor.h"
#include "workload/workload.h"

namespace copart {
namespace {

// Shared §6.3-style consolidation shell: memcached-class LC on 8 cores
// against two 4-core batch apps, MBA protection at the burst threshold.
ServeScenarioConfig BaseScenario() {
  ServeScenarioConfig config;
  config.duration_sec = 30.0;
  config.control_period_sec = 0.1;
  config.copart_params.slo.protect_rps_threshold = 150000.0;
  config.copart_params.slo.batch_mba_protect_percent = 50;
  return config;
}

GovernorAbScenario BurstScenario() {
  GovernorAbScenario scenario;
  scenario.name = "burst";
  scenario.config = Section63ServeScenario();
  return scenario;
}

GovernorAbScenario DiurnalScenario() {
  GovernorAbScenario scenario;
  scenario.name = "diurnal";
  scenario.config = BaseScenario();
  scenario.config.duration_sec = 40.0;  // Two full diurnal periods.
  scenario.config.seed = 43;
  ServeLcSpec lc;
  lc.workload = Memcached();
  lc.cores = 8;
  lc.arrival.kind = ArrivalKind::kDiurnal;
  lc.arrival.base_rate_rps = 90000.0;
  lc.arrival.diurnal_period_sec = 20.0;
  lc.arrival.diurnal_amplitude = 0.6;  // 36k trough, 144k peak.
  scenario.config.lc_apps.push_back(std::move(lc));
  scenario.config.batch_apps.push_back(ServeBatchSpec{WordCount(), 4});
  scenario.config.batch_apps.push_back(ServeBatchSpec{Kmeans(), 4});
  return scenario;
}

GovernorAbScenario FlashCrowdScenario() {
  GovernorAbScenario scenario;
  scenario.name = "flash-crowd";
  scenario.config = BaseScenario();
  scenario.config.seed = 44;
  ServeLcSpec lc;
  lc.workload = Memcached();
  lc.cores = 8;
  lc.arrival.kind = ArrivalKind::kFlashCrowd;
  lc.arrival.base_rate_rps = 80000.0;
  // Starting mid-epoch denies the zero-lag planner its clairvoyance: the
  // period straddling the onset was sized for 80 krps but absorbs half an
  // epoch at 200 krps, and the resulting backlog drains under allocations
  // the steady-state M/M/1 model considers sufficient.
  lc.arrival.flash_start_sec = 10.05;
  lc.arrival.flash_duration_sec = 8.0;
  // 176 krps through the window: high enough that the backlog from the
  // straddling period drains slowly at the just-meeting width, low enough
  // that extra ways still buy real drain bandwidth (past ~2.6x every
  // governor is pinned at the widest slice and the outcome is physics).
  lc.arrival.flash_multiplier = 2.2;
  scenario.config.lc_apps.push_back(std::move(lc));
  scenario.config.batch_apps.push_back(ServeBatchSpec{WordCount(), 4});
  scenario.config.batch_apps.push_back(ServeBatchSpec{Kmeans(), 4});
  return scenario;
}

GovernorAbScenario PhaseShiftScenario() {
  GovernorAbScenario scenario;
  scenario.name = "phase-shift";
  scenario.config = BaseScenario();
  scenario.config.duration_sec = 36.0;  // Three 12 s phase cycles.
  scenario.config.seed = 45;
  // The correlated pair: the LC hot set rotates exactly when the batch
  // side turns scan-heavy, so the analytic capability model (fit to the
  // steady phase) over-promises right when contention peaks.
  const CorrelatedPair pair = CorrelatedLcBatchPair(12.0);
  ServeLcSpec lc;
  lc.workload = pair.lc;
  lc.cores = 8;
  lc.arrival.kind = ArrivalKind::kPoisson;
  lc.arrival.base_rate_rps = 110000.0;
  scenario.config.lc_apps.push_back(std::move(lc));
  scenario.config.batch_apps.push_back(ServeBatchSpec{pair.batch, 4});
  scenario.config.batch_apps.push_back(ServeBatchSpec{Kmeans(), 4});
  return scenario;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::vector<GovernorAbScenario> GovernorAbScenarios() {
  std::vector<GovernorAbScenario> scenarios;
  scenarios.push_back(BurstScenario());
  scenarios.push_back(DiurnalScenario());
  scenarios.push_back(FlashCrowdScenario());
  scenarios.push_back(PhaseShiftScenario());
  return scenarios;
}

GovernorAbResult RunGovernorAb(const GovernorAbConfig& config) {
  const std::vector<GovernorAbScenario> scenarios = GovernorAbScenarios();
  const std::vector<std::string> governors =
      config.governors.empty() ? RegisteredSloGovernorNames()
                               : config.governors;
  CHECK(!governors.empty());
  const size_t num_cells = scenarios.size() * governors.size();

  GovernorAbResult result;
  result.cells = ParallelMap<GovernorAbCell>(
      config.parallel, num_cells,
      [&](size_t index) {
        const GovernorAbScenario& scenario =
            scenarios[index / governors.size()];
        const std::string& governor = governors[index % governors.size()];
        ServeScenarioConfig cell_config = scenario.config;
        cell_config.mode = ServeMode::kCopartSlo;
        cell_config.copart_params.slo.governor = governor;
        const ServeScenarioResult run = RunServeScenario(cell_config);

        GovernorAbCell cell;
        cell.scenario = scenario.name;
        cell.governor = governor;
        const ServeLcResult& lc = run.lc.front();
        cell.p95_ms = lc.p95_ms;
        cell.slo_violation_rate = lc.slo_violation_fraction;
        cell.batch_unfairness = run.run_batch_unfairness;
        cell.slo_resizes = run.slo_resizes;
        // Convergence: a sample violates when its epoch p95 exceeded the
        // SLO or the epoch stalled (no completions with work queued —
        // p95 reads 0 then). Same rule RunServeScenario counts with.
        const double slo_ms = lc.slo_p95_ms;
        double ways_sum = 0.0;
        for (size_t i = 0; i < run.samples.size(); ++i) {
          const ServeSample& sample = run.samples[i];
          ways_sum += sample.lc_ways;
          const bool stalled = sample.p95_ms == 0.0 && sample.queue_depth > 0;
          if (sample.p95_ms > slo_ms || stalled) {
            cell.convergence_epochs = static_cast<uint64_t>(i) + 1;
          }
        }
        cell.mean_lc_ways =
            run.samples.empty()
                ? 0.0
                : ways_sum / static_cast<double>(run.samples.size());
        return cell;
      },
      &result.stats);
  return result;
}

std::string GovernorAbToJson(const GovernorAbResult& result) {
  std::ostringstream out;
  out << "{\n  \"cells\": [\n";
  for (size_t i = 0; i < result.cells.size(); ++i) {
    const GovernorAbCell& cell = result.cells[i];
    out << "    {\"scenario\": \"" << cell.scenario << "\", \"governor\": \""
        << cell.governor << "\", \"p95_ms\": " << FormatDouble(cell.p95_ms)
        << ", \"slo_violation_rate\": "
        << FormatDouble(cell.slo_violation_rate)
        << ", \"convergence_epochs\": " << cell.convergence_epochs
        << ", \"mean_lc_ways\": " << FormatDouble(cell.mean_lc_ways)
        << ", \"batch_unfairness\": " << FormatDouble(cell.batch_unfairness)
        << ", \"slo_resizes\": " << cell.slo_resizes << "}"
        << (i + 1 == result.cells.size() ? "" : ",") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

Status WriteGovernorAbCsv(const GovernorAbResult& result,
                          const std::string& path) {
  CsvWriter writer(path);
  if (!writer.ok()) {
    return writer.status();
  }
  writer.WriteRow({"scenario", "governor", "p95_ms", "slo_violation_rate",
                   "convergence_epochs", "mean_lc_ways", "batch_unfairness",
                   "slo_resizes"});
  for (const GovernorAbCell& cell : result.cells) {
    writer.WriteRow({cell.scenario, cell.governor, FormatDouble(cell.p95_ms),
                     FormatDouble(cell.slo_violation_rate),
                     std::to_string(cell.convergence_epochs),
                     FormatDouble(cell.mean_lc_ways),
                     FormatDouble(cell.batch_unfairness),
                     std::to_string(cell.slo_resizes)});
  }
  return writer.status();
}

void PrintGovernorAbTable(const GovernorAbResult& result, std::FILE* out) {
  std::vector<std::vector<std::string>> rows;
  for (const GovernorAbCell& cell : result.cells) {
    rows.push_back({cell.scenario, cell.governor,
                    FormatFixed(cell.p95_ms, 3),
                    FormatFixed(100.0 * cell.slo_violation_rate, 1) + "%",
                    std::to_string(cell.convergence_epochs),
                    FormatFixed(cell.mean_lc_ways, 2),
                    FormatFixed(cell.batch_unfairness, 4),
                    std::to_string(cell.slo_resizes)});
  }
  PrintTable({"scenario", "governor", "p95_ms", "slo_viol", "converge",
              "mean_ways", "batch_unf", "resizes"},
             rows, out);

  // Verdict lines: on the two scenarios the analytic model cannot track,
  // the best learned governor should strictly beat threshold on violation
  // rate or p95.
  for (const char* scenario : {"flash-crowd", "phase-shift"}) {
    const GovernorAbCell* threshold = nullptr;
    const GovernorAbCell* best_learned = nullptr;
    for (const GovernorAbCell& cell : result.cells) {
      if (cell.scenario != scenario) {
        continue;
      }
      if (cell.governor == "threshold") {
        threshold = &cell;
      } else if (best_learned == nullptr ||
                 cell.slo_violation_rate < best_learned->slo_violation_rate) {
        best_learned = &cell;
      }
    }
    if (threshold == nullptr || best_learned == nullptr) {
      continue;
    }
    const bool wins =
        best_learned->slo_violation_rate < threshold->slo_violation_rate ||
        best_learned->p95_ms < threshold->p95_ms;
    std::fprintf(out,
                 "%s verdict: %s slo_viol %.1f%% p95 %.3f ms vs threshold "
                 "%.1f%% / %.3f ms — learned %s\n",
                 scenario, best_learned->governor.c_str(),
                 100.0 * best_learned->slo_violation_rate,
                 best_learned->p95_ms, 100.0 * threshold->slo_violation_rate,
                 threshold->p95_ms, wins ? "wins" : "loses");
  }
}

}  // namespace copart
