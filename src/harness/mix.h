// Workload mixes (paper §4.2, §6.1, §6.2).
//
// The paper evaluates seven mix families built from the Table 2 benchmarks:
//   H-LLC / H-BW / H-Both : three benchmarks of the named sensitivity class
//                           plus one insensitive benchmark.
//   M-LLC / M-BW / M-Both : two of the class plus two insensitive.
//   IS                    : insensitive benchmarks only.
// §6.2 sweeps the app count from 3 to 6, generating the mixes "similarly":
// H-mixes take (count-1) class benchmarks (cycling through the class) plus
// one insensitive; M-mixes take floor(count/2) class benchmarks and fill
// with insensitive; IS cycles the insensitive pair.
#ifndef COPART_HARNESS_MIX_H_
#define COPART_HARNESS_MIX_H_

#include <string>
#include <vector>

#include "workload/workload.h"

namespace copart {

enum class MixFamily {
  kHighLlc,
  kHighBw,
  kHighBoth,
  kModerateLlc,
  kModerateBw,
  kModerateBoth,
  kInsensitive,
};

const char* MixFamilyName(MixFamily family);

// All seven families in the paper's Fig. 12 order.
std::vector<MixFamily> AllMixFamilies();

struct WorkloadMix {
  std::string name;
  std::vector<WorkloadDescriptor> apps;
};

// Builds the family's mix at the given app count (3..6 in the paper).
WorkloadMix MakeMix(MixFamily family, size_t app_count = 4);

// The three characterization mixes of §4.2 (Figs. 4-6): named fixed
// four-app mixes.
WorkloadMix LlcSensitiveCharacterizationMix();   // WN, WS, RT, SW
WorkloadMix BwSensitiveCharacterizationMix();    // OC, CG, FT, SW
WorkloadMix BothSensitiveCharacterizationMix();  // SP, ON, FMM, SW

// Cores per app when `app_count` apps share the paper's 16-core machine
// (threads pinned, cores dedicated).
uint32_t CoresPerApp(size_t app_count);

}  // namespace copart

#endif  // COPART_HARNESS_MIX_H_
