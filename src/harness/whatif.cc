#include "harness/whatif.h"

#include "cache/way_mask.h"
#include "common/logging.h"
#include "core/ucp_policy.h"
#include "machine/simulated_machine.h"
#include "metrics/fairness.h"

namespace copart {
namespace {

MachineConfig NoiseFreeConfig(const MachineConfig& machine_config) {
  MachineConfig config = machine_config;
  config.ips_noise_sigma = 0.0;
  return config;
}

}  // namespace

WhatIfEvaluator::WhatIfEvaluator(
    const std::vector<WorkloadDescriptor>& workloads,
    const MachineConfig& machine_config, uint32_t cores_per_app)
    : machine_(NoiseFreeConfig(machine_config)) {
  CHECK(!workloads.empty());
  app_names_.reserve(workloads.size());
  apps_.reserve(workloads.size());
  solo_full_ips_.reserve(workloads.size());
  for (size_t i = 0; i < workloads.size(); ++i) {
    const uint32_t cores =
        cores_per_app > 0 ? cores_per_app : workloads[i].num_threads;
    Result<AppId> app = machine_.LaunchApp(workloads[i], cores);
    CHECK(app.ok()) << app.status().ToString();
    apps_.push_back(*app);
    machine_.AssignAppToClos(*app, static_cast<uint32_t>(i + 1));
    app_names_.push_back(workloads[i].short_name);
    solo_full_ips_.push_back(machine_.SoloFullResourceIps(workloads[i], cores));
    has_phases_ = has_phases_ || !workloads[i].phases.empty();
  }
  baseline_ = machine_.Snapshot();
}

void WhatIfEvaluator::EvaluateInto(const SystemState& state,
                                   WhatIfOutcome* outcome) {
  CHECK_EQ(state.NumApps(), apps_.size());
  CHECK(state.Valid()) << state.ToString();
  // The solve is a pure function of (masks, MBA, membership, phase params):
  // for phase-free workloads the clock and counters drifting across
  // evaluations cannot affect it, so candidates are applied directly on top
  // of the previous one. The value-comparing mutators then leave untouched
  // CLOSes clean, and a candidate differing only in MBA levels — the common
  // move in coordinate-descent searches — takes the machine's cheap
  // bandwidth-tier partial solve. With phased workloads the inputs do
  // depend on the clock, so roll back to the baseline to pin every
  // evaluation at the same instant.
  if (has_phases_) {
    machine_.Restore(baseline_);
  }
  const uint32_t num_ways = machine_.config().llc.num_ways;
  for (size_t i = 0; i < apps_.size(); ++i) {
    const uint32_t clos = static_cast<uint32_t>(i + 1);
    Result<WayMask> mask = WayMask::FromBits(state.WayMaskBits(i), num_ways);
    CHECK(mask.ok()) << mask.status().ToString();
    machine_.SetClosWayMask(clos, *mask);
    machine_.SetClosMbaLevel(clos, state.allocation(i).mba_level);
  }

  // The analytic model is memoryless: one epoch is the steady state.
  machine_.AdvanceTime(0.1);
  outcome->app_names = app_names_;
  outcome->solo_full_ips = solo_full_ips_;
  outcome->predicted_ips.resize(apps_.size());
  outcome->slowdowns.resize(apps_.size());
  for (size_t i = 0; i < apps_.size(); ++i) {
    const double ips = machine_.LastEpoch(apps_[i]).ips;
    outcome->predicted_ips[i] = ips;
    outcome->slowdowns[i] = Slowdown(solo_full_ips_[i], ips);
  }
  outcome->unfairness = Unfairness(outcome->slowdowns);
  outcome->throughput_geomean = GeoMeanThroughput(outcome->predicted_ips);
}

WhatIfOutcome WhatIfEvaluator::Evaluate(const SystemState& state) {
  WhatIfOutcome outcome;
  EvaluateInto(state, &outcome);
  return outcome;
}

WhatIfOutcome PredictOutcome(const std::vector<WorkloadDescriptor>& workloads,
                             const SystemState& state,
                             const MachineConfig& machine_config,
                             uint32_t cores_per_app) {
  WhatIfEvaluator evaluator(workloads, machine_config, cores_per_app);
  return evaluator.Evaluate(state);
}

WhatIfOutcome PredictEqualShareOutcome(
    const std::vector<WorkloadDescriptor>& workloads,
    const ResourcePool& pool, const MachineConfig& machine_config,
    uint32_t cores_per_app) {
  return PredictOutcome(workloads,
                        SystemState::EqualShare(pool, workloads.size()),
                        machine_config, cores_per_app);
}

WhatIfOutcome PredictUcpOutcome(
    const std::vector<WorkloadDescriptor>& workloads,
    const ResourcePool& pool, const MachineConfig& machine_config,
    uint32_t cores_per_app) {
  MachineConfig config = machine_config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& workload : workloads) {
    const uint32_t cores =
        cores_per_app > 0 ? cores_per_app : workload.num_threads;
    Result<AppId> app = machine.LaunchApp(workload, cores);
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
  }
  const SystemState state = ComputeUcpAllocation(machine, apps, pool);
  return PredictOutcome(workloads, state, machine_config, cores_per_app);
}

}  // namespace copart
