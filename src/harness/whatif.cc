#include "harness/whatif.h"

#include "cache/way_mask.h"
#include "common/logging.h"
#include "core/ucp_policy.h"
#include "machine/simulated_machine.h"
#include "metrics/fairness.h"

namespace copart {

WhatIfOutcome PredictOutcome(const std::vector<WorkloadDescriptor>& workloads,
                             const SystemState& state,
                             const MachineConfig& machine_config,
                             uint32_t cores_per_app) {
  CHECK(!workloads.empty());
  CHECK_EQ(state.NumApps(), workloads.size());
  CHECK(state.Valid()) << state.ToString();

  MachineConfig config = machine_config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);

  WhatIfOutcome outcome;
  std::vector<AppId> apps;
  for (size_t i = 0; i < workloads.size(); ++i) {
    const uint32_t cores =
        cores_per_app > 0 ? cores_per_app : workloads[i].num_threads;
    Result<AppId> app = machine.LaunchApp(workloads[i], cores);
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
    const uint32_t clos = static_cast<uint32_t>(i + 1);
    machine.AssignAppToClos(*app, clos);
    Result<WayMask> mask =
        WayMask::FromBits(state.WayMaskBits(i), config.llc.num_ways);
    CHECK(mask.ok()) << mask.status().ToString();
    machine.SetClosWayMask(clos, *mask);
    machine.SetClosMbaLevel(clos, state.allocation(i).mba_level);
    outcome.app_names.push_back(workloads[i].short_name);
    outcome.solo_full_ips.push_back(
        machine.SoloFullResourceIps(workloads[i], cores));
  }

  // The analytic model is memoryless: one epoch is the steady state.
  machine.AdvanceTime(0.1);
  for (size_t i = 0; i < apps.size(); ++i) {
    const double ips = machine.LastEpoch(apps[i]).ips;
    outcome.predicted_ips.push_back(ips);
    outcome.slowdowns.push_back(Slowdown(outcome.solo_full_ips[i], ips));
  }
  outcome.unfairness = Unfairness(outcome.slowdowns);
  outcome.throughput_geomean = GeoMeanThroughput(outcome.predicted_ips);
  return outcome;
}

WhatIfOutcome PredictEqualShareOutcome(
    const std::vector<WorkloadDescriptor>& workloads,
    const ResourcePool& pool, const MachineConfig& machine_config,
    uint32_t cores_per_app) {
  return PredictOutcome(workloads,
                        SystemState::EqualShare(pool, workloads.size()),
                        machine_config, cores_per_app);
}

WhatIfOutcome PredictUcpOutcome(
    const std::vector<WorkloadDescriptor>& workloads,
    const ResourcePool& pool, const MachineConfig& machine_config,
    uint32_t cores_per_app) {
  MachineConfig config = machine_config;
  config.ips_noise_sigma = 0.0;
  SimulatedMachine machine(config);
  std::vector<AppId> apps;
  for (const WorkloadDescriptor& workload : workloads) {
    const uint32_t cores =
        cores_per_app > 0 ? cores_per_app : workload.num_threads;
    Result<AppId> app = machine.LaunchApp(workload, cores);
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
  }
  const SystemState state = ComputeUcpAllocation(machine, apps, pool);
  return PredictOutcome(workloads, state, machine_config, cores_per_app);
}

}  // namespace copart
