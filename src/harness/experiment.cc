#include "harness/experiment.h"

#include <cmath>

#include "common/logging.h"
#include "core/dcat_policy.h"
#include "core/ucp_policy.h"
#include "harness/static_oracle.h"
#include "metrics/fairness.h"

namespace copart {

ExperimentResult RunExperiment(const WorkloadMix& mix,
                               const PolicyFactory& factory,
                               const ExperimentConfig& config) {
  CHECK(!mix.apps.empty());
  const uint32_t cores =
      config.cores_per_app > 0 ? config.cores_per_app
                               : config.machine.num_cores /
                                     static_cast<uint32_t>(mix.apps.size());
  CHECK_GE(cores, 1u);

  SimulatedMachine machine(config.machine);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);

  std::vector<AppId> apps;
  for (const WorkloadDescriptor& descriptor : mix.apps) {
    Result<AppId> app = machine.LaunchApp(descriptor, cores);
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
  }

  std::unique_ptr<ConsolidationPolicy> policy =
      factory(&resctrl, &monitor, apps, config.pool);
  if (auto* copart = dynamic_cast<CoPartPolicy*>(policy.get())) {
    copart->manager().SetObservability(config.obs);
  }
  if (auto* managed = dynamic_cast<ManagedPartitionPolicy*>(policy.get())) {
    managed->manager().SetObservability(config.obs);
  }
  policy->Start();

  const int periods = static_cast<int>(
      std::llround(config.duration_sec / config.control_period_sec));
  for (int period = 0; period < periods; ++period) {
    machine.AdvanceTime(config.control_period_sec);
    policy->Tick();
  }

  ExperimentResult result;
  result.policy_name = policy->name();
  result.mix_name = mix.name;
  const double elapsed = machine.now();
  for (size_t i = 0; i < apps.size(); ++i) {
    result.app_names.push_back(mix.apps[i].short_name);
    const double avg_ips = machine.Counters(apps[i]).instructions / elapsed;
    result.avg_ips.push_back(avg_ips);
    result.solo_full_ips.push_back(
        machine.SoloFullResourceIps(mix.apps[i], cores));
    result.slowdowns.push_back(
        Slowdown(result.solo_full_ips.back(), avg_ips));
  }
  result.unfairness = Unfairness(result.slowdowns);
  result.throughput_geomean = GeoMeanThroughput(result.avg_ips);
  if (auto* copart = dynamic_cast<CoPartPolicy*>(policy.get())) {
    result.avg_exploration_us =
        copart->manager().exploration_time_stats().mean();
    copart->manager().ExportMetrics(ObsMetrics(config.obs));
  }
  if (auto* managed = dynamic_cast<ManagedPartitionPolicy*>(policy.get())) {
    result.avg_exploration_us =
        managed->manager().exploration_time_stats().mean();
    result.unmanaged_apps = managed->unmanaged_apps();
    managed->manager().ExportMetrics(ObsMetrics(config.obs));
  }
  return result;
}

PolicyFactory EqFactory() {
  return [](Resctrl* resctrl, PerfMonitor*, std::vector<AppId> apps,
            const ResourcePool& pool) {
    return MakeEqualPolicy(resctrl, std::move(apps), pool);
  };
}

PolicyFactory NoPartFactory() {
  return [](Resctrl* resctrl, PerfMonitor*, std::vector<AppId> apps,
            const ResourcePool&) {
    return std::make_unique<NoPartitionPolicy>(resctrl, std::move(apps));
  };
}

PolicyFactory CoPartFactory(ResourceManagerParams params) {
  return [params](Resctrl* resctrl, PerfMonitor* monitor,
                  std::vector<AppId> apps, const ResourcePool& pool) {
    return std::make_unique<CoPartPolicy>(resctrl, monitor, std::move(apps),
                                          pool, params,
                                          CoPartPolicy::Mode::kCoordinated);
  };
}

PolicyFactory CatOnlyFactory(ResourceManagerParams params) {
  return [params](Resctrl* resctrl, PerfMonitor* monitor,
                  std::vector<AppId> apps, const ResourcePool& pool) {
    return std::make_unique<CoPartPolicy>(resctrl, monitor, std::move(apps),
                                          pool, params,
                                          CoPartPolicy::Mode::kCatOnly);
  };
}

PolicyFactory MbaOnlyFactory(ResourceManagerParams params) {
  return [params](Resctrl* resctrl, PerfMonitor* monitor,
                  std::vector<AppId> apps, const ResourcePool& pool) {
    return std::make_unique<CoPartPolicy>(resctrl, monitor, std::move(apps),
                                          pool, params,
                                          CoPartPolicy::Mode::kMbaOnly);
  };
}

PolicyFactory StaticOracleFactory() {
  return [](Resctrl* resctrl, PerfMonitor*, std::vector<AppId> apps,
            const ResourcePool& pool) {
    // Serial: the factory can run inside a parallel replication fan-out,
    // where a nested parallel region is rejected.
    StaticOracleResult oracle = FindStaticOracleState(
        resctrl->machine(), apps, pool, ParallelConfig{.num_threads = 1});
    return MakeStaticOraclePolicy(resctrl, std::move(apps),
                                  std::move(oracle.best_state));
  };
}

PolicyFactory UcpFactory() {
  return [](Resctrl* resctrl, PerfMonitor*, std::vector<AppId> apps,
            const ResourcePool& pool) {
    return std::make_unique<UcpPolicy>(resctrl, std::move(apps), pool);
  };
}

PolicyFactory DcatFactory() {
  return [](Resctrl* resctrl, PerfMonitor* monitor, std::vector<AppId> apps,
            const ResourcePool& pool) {
    return std::make_unique<DcatPolicy>(resctrl, monitor, std::move(apps),
                                        pool);
  };
}

PolicyFactory PartitionPolicyFactory(ResourceManagerParams params) {
  return [params](Resctrl* resctrl, PerfMonitor* monitor,
                  std::vector<AppId> apps, const ResourcePool& pool) {
    return std::make_unique<ManagedPartitionPolicy>(
        resctrl, monitor, std::move(apps), pool, params);
  };
}

std::vector<std::pair<std::string, PolicyFactory>> StandardPolicies() {
  return {{"EQ", EqFactory()},
          {"ST", StaticOracleFactory()},
          {"CAT-only", CatOnlyFactory()},
          {"MBA-only", MbaOnlyFactory()},
          {"CoPart", CoPartFactory()}};
}

}  // namespace copart
