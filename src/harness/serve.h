// Request-serving scenario harness (paper §6.3 on the serve engine).
//
// Couples src/serve's discrete-event LC servers to the epoch simulator and
// a partitioning policy: each control period the harness feeds every LC
// app's offered load to the policy, advances the machine one epoch, and
// serves the epoch's arrivals at the service rate implied by the app's
// effective IPS under its current CLOS mask + MBA level. Three modes:
//
//   kCopartSlo   — ResourceManager with params.slo.enabled: the SLO
//                  governor sizes each LC slice (ways first, then batch
//                  MBA protection) and CoPart runs fairness allocation for
//                  the batch apps over the remaining pool.
//   kEqualShare  — one static equal split of the whole machine across all
//                  apps (LC and batch alike), MBA throttled evenly.
//   kNoPart      — no partitioning at all: every app in the default CLOS.
//
// Everything is seed-deterministic: LC server streams are forked from the
// scenario seed by LC index, and RunServeComparison's per-mode fan-out
// follows the parallel sweep determinism contract, so results (and the
// exported CSV/trace/audit/metrics artifacts) are bit-identical across
// --threads.
#ifndef COPART_HARNESS_SERVE_H_
#define COPART_HARNESS_SERVE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/copart_params.h"
#include "machine/machine_config.h"
#include "obs/obs.h"
#include "serve/arrival.h"
#include "workload/workload.h"

namespace copart {

enum class ServeMode { kCopartSlo, kEqualShare, kNoPart };

const char* ServeModeName(ServeMode mode);

// One latency-critical surrogate: a workload descriptor plus its open-loop
// arrival trace and queue parameters. SLO and per-request instruction
// demand default to the descriptor's values when left at 0.
struct ServeLcSpec {
  WorkloadDescriptor workload;
  uint32_t cores = 8;
  ArrivalConfig arrival;
  double slo_p95_ms = 0.0;               // 0 = workload.slo_p95_ms.
  double instructions_per_request = 0.0; // 0 = workload default.
  bool exponential_service = true;
  size_t queue_capacity = 1 << 16;
  // When true, the SLO governor's capability model is measured rather than
  // analytic: each candidate way width is scored by a what-if epoch solve
  // (harness/whatif.h's snapshot/rollback evaluator) with the LC slice at
  // that width against the colocated batch set. Slower to set up, but the
  // model then sees the same contention physics the machine will apply.
  bool whatif_capability = false;
};

struct ServeBatchSpec {
  WorkloadDescriptor workload;
  uint32_t cores = 4;
};

struct ServeScenarioConfig {
  MachineConfig machine;
  double duration_sec = 60.0;
  double control_period_sec = 0.1;
  uint64_t seed = 42;
  std::vector<ServeLcSpec> lc_apps;     // 1-2 surrogates.
  std::vector<ServeBatchSpec> batch_apps;
  ServeMode mode = ServeMode::kCopartSlo;
  ResourceManagerParams copart_params;  // slo.enabled forced on in CoPart mode.
  // Optional observability bundle (CoPart mode only; the manager's audit
  // records and the serve metrics land here). Not owned; null = off.
  Observability* obs = nullptr;
};

// One control period's telemetry, tracking the primary LC app (index 0).
struct ServeSample {
  double time = 0.0;
  double offered_rps = 0.0;   // Measured arrivals / dt.
  double p95_ms = 0.0;        // This epoch's completions (0 when none).
  double p99_ms = 0.0;
  uint64_t queue_depth = 0;
  uint32_t lc_ways = 0;
  uint32_t batch_max_mba = 100;
  double batch_unfairness = 0.0;
  std::string phase;          // CoPart phase name, or the mode name.
};

// Run-level aggregate for one LC app.
struct ServeLcResult {
  std::string name;
  double slo_p95_ms = 0.0;
  uint64_t arrivals = 0;
  uint64_t completions = 0;
  uint64_t drops = 0;
  uint64_t queue_depth_end = 0;
  // Percentiles of the cumulative sojourn-time sketch over the whole run.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  // Fraction of epochs violating the SLO (epoch p95 above the SLO, or a
  // stalled epoch: zero completions with requests waiting).
  double slo_violation_fraction = 0.0;
};

struct ServeScenarioResult {
  ServeMode mode = ServeMode::kCopartSlo;
  std::vector<ServeSample> samples;
  std::vector<ServeLcResult> lc;
  // Mean of the per-epoch instantaneous batch unfairness samples.
  double mean_batch_unfairness = 0.0;
  // Whole-run batch unfairness (Eq. 1/Eq. 2 over run-average IPS) — directly
  // comparable with harness/experiment.h's ExperimentResult::unfairness.
  double run_batch_unfairness = 0.0;
  uint64_t copart_adaptations = 0;
  uint64_t slo_resizes = 0;
};

// Predicted LC service capacity (IPS) with `ways` LLC ways at MBA 100,
// using the same CPI model as the machine — what a Heracles-style manager
// would fit from its own profiling. Shared by the serve harness, the SLO
// governor models it builds, and the §6.3 case study.
double PredictLcCapabilityIps(const WorkloadDescriptor& lc, uint32_t lc_cores,
                              uint32_t ways, const MachineConfig& machine);

ServeScenarioResult RunServeScenario(const ServeScenarioConfig& config);

// Runs the same scenario under all three modes (CoPart cell first; the
// config's mode field is ignored). `config.obs` is attached only to the
// CoPart cell. `parallel` fans the three cells out; results are
// bit-identical for every thread count.
struct ServeComparisonResult {
  ServeScenarioResult copart;
  ServeScenarioResult equal_share;
  ServeScenarioResult no_part;
};
ServeComparisonResult RunServeComparison(const ServeScenarioConfig& config,
                                         const ParallelConfig& parallel = {});

// Canonical full-precision (%.17g) serialization of a comparison — the
// byte-exact surface pinned by tests/golden/serve_golden.json and checked
// by `copartctl governors` before trusting the extracted threshold
// governor. Every 10th sample of each mode's trajectory is included.
std::string SerializeServeComparison(const ServeComparisonResult& comparison);

// Per-period CSV (header + one row per sample) for plotting.
Status WriteServeCsv(const ServeScenarioResult& result,
                     const std::string& path);

// The §6.3 serving scenario: one memcached surrogate (8 cores) against the
// Word Count and Kmeans batch surrogates (4 cores each), driven by a burst
// trace whose peak exceeds what EqualShare and NoPart can serve within the
// 1 ms p95 SLO but stays within the SLO governor's reach.
ServeScenarioConfig Section63ServeScenario();

}  // namespace copart

#endif  // COPART_HARNESS_SERVE_H_
