#include "harness/heatmap.h"

#include <algorithm>

#include "cache/way_mask.h"
#include "common/logging.h"
#include "common/rng.h"
#include "machine/simulated_machine.h"
#include "metrics/fairness.h"
#include "resctrl/resctrl.h"

namespace copart {
namespace {

// One launched app bound to its own resctrl group — the unit every sweep
// cell configures. Building a fresh sandbox per cell is what makes cells
// independent (and therefore parallelizable): the epoch model is memoryless,
// so a cell evaluated on a fresh machine produces the same steady-state
// rates as one evaluated mid-way through a serial sweep.
struct SoloSandbox {
  SimulatedMachine machine;
  Resctrl resctrl;
  AppId app;
  ResctrlGroupId group;

  SoloSandbox(const MachineConfig& config,
              const WorkloadDescriptor& descriptor, uint32_t num_cores)
      : machine(config), resctrl(&machine), app(0), group(0) {
    Result<AppId> launched = machine.LaunchApp(descriptor, num_cores);
    CHECK(launched.ok()) << launched.status().ToString();
    app = *launched;
    Result<ResctrlGroupId> created = resctrl.CreateGroup("sweep");
    CHECK(created.ok()) << created.status().ToString();
    group = *created;
    Status status = resctrl.AssignApp(group, app);
    CHECK(status.ok()) << status.ToString();
  }
};

struct MixSandbox {
  SimulatedMachine machine;
  Resctrl resctrl;
  std::vector<AppId> apps;
  std::vector<ResctrlGroupId> groups;

  MixSandbox(const MachineConfig& config, const WorkloadMix& mix,
             uint32_t cores_per_app)
      : machine(config), resctrl(&machine) {
    for (const WorkloadDescriptor& descriptor : mix.apps) {
      Result<AppId> app = machine.LaunchApp(descriptor, cores_per_app);
      CHECK(app.ok()) << app.status().ToString();
      apps.push_back(*app);
      Result<ResctrlGroupId> group = resctrl.CreateGroup(
          "grid_" + std::to_string(app->value()));
      CHECK(group.ok()) << group.status().ToString();
      Status status = resctrl.AssignApp(*group, *app);
      CHECK(status.ok()) << status.ToString();
      groups.push_back(*group);
    }
  }

  void SetLlcConfig(const std::vector<uint32_t>& ways) {
    CHECK_EQ(ways.size(), apps.size());
    uint32_t offset = 0;
    for (size_t i = 0; i < apps.size(); ++i) {
      CHECK_GE(ways[i], 1u);
      const uint64_t bits = ((1ULL << ways[i]) - 1ULL) << offset;
      offset += ways[i];
      Status status = resctrl.SetCacheMask(groups[i], bits);
      CHECK(status.ok()) << status.ToString();
    }
    CHECK_LE(offset, machine.config().llc.num_ways);
  }

  void SetMbaConfig(const std::vector<uint32_t>& levels) {
    CHECK_EQ(levels.size(), apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
      Status status = resctrl.SetMbaPercent(groups[i], levels[i]);
      CHECK(status.ok()) << status.ToString();
    }
  }

  // One epoch at the current configuration -> Eq. 2 unfairness against the
  // given solo-full references.
  double EvaluateUnfairness(const std::vector<double>& solo_full) {
    machine.AdvanceTime(0.1);
    std::vector<double> slowdowns;
    slowdowns.reserve(apps.size());
    for (size_t i = 0; i < apps.size(); ++i) {
      slowdowns.push_back(
          Slowdown(solo_full[i], machine.LastEpoch(apps[i]).ips));
    }
    return Unfairness(slowdowns);
  }
};

}  // namespace

uint32_t SoloHeatmap::MinWaysForFraction(double fraction) const {
  // Column of MBA 100 (last), peak-normalized values.
  const size_t mba_full = mba_percents.size() - 1;
  for (size_t w = 0; w < way_counts.size(); ++w) {
    if (normalized_ips[w][mba_full] >= fraction) {
      return way_counts[w];
    }
  }
  return way_counts.back();
}

uint32_t SoloHeatmap::MinMbaForFraction(double fraction) const {
  const size_t ways_full = way_counts.size() - 1;
  for (size_t m = 0; m < mba_percents.size(); ++m) {
    if (normalized_ips[ways_full][m] >= fraction) {
      return mba_percents[m];
    }
  }
  return mba_percents.back();
}

SoloHeatmap SweepSoloPerformance(const WorkloadDescriptor& descriptor,
                                 const MachineConfig& machine_config,
                                 uint32_t num_cores,
                                 const ParallelConfig& parallel) {
  MachineConfig config = machine_config;
  config.ips_noise_sigma = 0.0;  // Characterization wants the clean surface.

  SoloHeatmap heatmap;
  heatmap.workload = descriptor.short_name;
  for (uint32_t ways = 1; ways <= config.llc.num_ways; ++ways) {
    heatmap.way_counts.push_back(ways);
  }
  for (uint32_t mba = MbaLevel::kMin; mba <= MbaLevel::kMax;
       mba += MbaLevel::kStep) {
    heatmap.mba_percents.push_back(mba);
  }

  const size_t num_mba = heatmap.mba_percents.size();
  const size_t cells = heatmap.way_counts.size() * num_mba;
  const Rng seeder(config.seed);
  const std::vector<double> raw_ips = ParallelMap<double>(
      parallel, cells,
      [&](size_t cell) {
        MachineConfig cell_config = config;
        cell_config.seed = seeder.Fork(cell).NextUint64();
        SoloSandbox sandbox(cell_config, descriptor, num_cores);
        const uint32_t ways = heatmap.way_counts[cell / num_mba];
        const uint32_t mba = heatmap.mba_percents[cell % num_mba];
        Status status =
            sandbox.resctrl.SetCacheMask(sandbox.group, (1ULL << ways) - 1ULL);
        CHECK(status.ok()) << status.ToString();
        status = sandbox.resctrl.SetMbaPercent(sandbox.group, mba);
        CHECK(status.ok()) << status.ToString();
        sandbox.machine.AdvanceTime(0.1);
        return sandbox.machine.LastEpoch(sandbox.app).ips;
      },
      &heatmap.stats);

  // Serial reduction in index order: peak-normalize the surface.
  double peak = 0.0;
  for (double ips : raw_ips) {
    peak = std::max(peak, ips);
  }
  CHECK_GT(peak, 0.0);
  heatmap.normalized_ips.assign(
      heatmap.way_counts.size(),
      std::vector<double>(heatmap.mba_percents.size(), 0.0));
  for (size_t w = 0; w < heatmap.way_counts.size(); ++w) {
    for (size_t m = 0; m < num_mba; ++m) {
      heatmap.normalized_ips[w][m] = raw_ips[w * num_mba + m] / peak;
    }
  }
  return heatmap;
}

FairnessGrid SweepMixFairness(
    const WorkloadMix& mix,
    const std::vector<std::vector<uint32_t>>& llc_configs,
    const std::vector<std::vector<uint32_t>>& mba_configs,
    const MachineConfig& machine_config, uint32_t cores_per_app,
    const ParallelConfig& parallel) {
  MachineConfig config = machine_config;
  config.ips_noise_sigma = 0.0;

  FairnessGrid grid;
  grid.mix_name = mix.name;
  for (const WorkloadDescriptor& descriptor : mix.apps) {
    grid.app_names.push_back(descriptor.short_name);
  }
  grid.llc_configs = llc_configs;
  grid.mba_configs = mba_configs;

  // The Eq. 1 references are allocation-independent; compute them once.
  std::vector<double> solo_full;
  {
    SimulatedMachine reference(config);
    for (const WorkloadDescriptor& descriptor : mix.apps) {
      solo_full.push_back(
          reference.SoloFullResourceIps(descriptor, cores_per_app));
    }
  }

  // Normalization baseline: no partitioning (full masks, MBA 100).
  {
    MixSandbox baseline(config, mix, cores_per_app);
    // Full overlapping masks for every app, not a partitioning.
    for (size_t i = 0; i < baseline.apps.size(); ++i) {
      Status status = baseline.resctrl.SetCacheMask(
          baseline.groups[i], (1ULL << config.llc.num_ways) - 1ULL);
      CHECK(status.ok()) << status.ToString();
      status = baseline.resctrl.SetMbaPercent(baseline.groups[i], 100);
      CHECK(status.ok()) << status.ToString();
    }
    grid.nopart_unfairness = baseline.EvaluateUnfairness(solo_full);
  }
  CHECK_GT(grid.nopart_unfairness, 0.0)
      << "degenerate mix: unpartitioned run is perfectly fair";

  const size_t num_mba = mba_configs.size();
  const size_t cells = llc_configs.size() * num_mba;
  const Rng seeder(config.seed);
  const std::vector<double> raw = ParallelMap<double>(
      parallel, cells,
      [&](size_t cell) {
        MachineConfig cell_config = config;
        cell_config.seed = seeder.Fork(cell).NextUint64();
        MixSandbox sandbox(cell_config, mix, cores_per_app);
        sandbox.SetLlcConfig(llc_configs[cell / num_mba]);
        sandbox.SetMbaConfig(mba_configs[cell % num_mba]);
        return sandbox.EvaluateUnfairness(solo_full);
      },
      &grid.stats);

  grid.normalized_unfairness.assign(
      llc_configs.size(), std::vector<double>(num_mba, 0.0));
  for (size_t l = 0; l < llc_configs.size(); ++l) {
    for (size_t m = 0; m < num_mba; ++m) {
      grid.normalized_unfairness[l][m] =
          raw[l * num_mba + m] / grid.nopart_unfairness;
    }
  }
  return grid;
}

std::vector<std::vector<uint32_t>> DefaultLlcConfigs() {
  // Ways per app for a four-app mix over an 11-way LLC; includes the
  // configurations the paper calls out ((5,3,2,1), WN at 2 ways, ...).
  return {
      {8, 1, 1, 1}, {5, 3, 2, 1}, {4, 4, 2, 1}, {5, 2, 3, 1},
      {2, 5, 3, 1}, {3, 3, 3, 2}, {2, 3, 2, 4}, {1, 2, 3, 5},
      {2, 2, 2, 5}, {1, 1, 1, 8},
  };
}

std::vector<std::vector<uint32_t>> DefaultMbaConfigs() {
  return {
      {100, 100, 100, 100}, {20, 10, 100, 10}, {40, 40, 40, 10},
      {100, 40, 20, 10},    {10, 100, 40, 20}, {30, 30, 30, 30},
      {10, 20, 40, 100},    {20, 100, 20, 20}, {10, 10, 10, 100},
      {10, 10, 10, 10},
  };
}

}  // namespace copart
