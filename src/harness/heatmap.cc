#include "harness/heatmap.h"

#include <algorithm>

#include "cache/way_mask.h"
#include "common/logging.h"
#include "machine/simulated_machine.h"
#include "metrics/fairness.h"
#include "resctrl/resctrl.h"

namespace copart {

uint32_t SoloHeatmap::MinWaysForFraction(double fraction) const {
  // Column of MBA 100 (last), peak-normalized values.
  const size_t mba_full = mba_percents.size() - 1;
  for (size_t w = 0; w < way_counts.size(); ++w) {
    if (normalized_ips[w][mba_full] >= fraction) {
      return way_counts[w];
    }
  }
  return way_counts.back();
}

uint32_t SoloHeatmap::MinMbaForFraction(double fraction) const {
  const size_t ways_full = way_counts.size() - 1;
  for (size_t m = 0; m < mba_percents.size(); ++m) {
    if (normalized_ips[ways_full][m] >= fraction) {
      return mba_percents[m];
    }
  }
  return mba_percents.back();
}

SoloHeatmap SweepSoloPerformance(const WorkloadDescriptor& descriptor,
                                 const MachineConfig& machine_config,
                                 uint32_t num_cores) {
  MachineConfig config = machine_config;
  config.ips_noise_sigma = 0.0;  // Characterization wants the clean surface.

  SoloHeatmap heatmap;
  heatmap.workload = descriptor.short_name;
  for (uint32_t ways = 1; ways <= config.llc.num_ways; ++ways) {
    heatmap.way_counts.push_back(ways);
  }
  for (uint32_t mba = MbaLevel::kMin; mba <= MbaLevel::kMax;
       mba += MbaLevel::kStep) {
    heatmap.mba_percents.push_back(mba);
  }

  SimulatedMachine machine(config);
  Resctrl resctrl(&machine);
  Result<AppId> app = machine.LaunchApp(descriptor, num_cores);
  CHECK(app.ok()) << app.status().ToString();
  Result<ResctrlGroupId> group = resctrl.CreateGroup("sweep");
  CHECK(group.ok()) << group.status().ToString();
  Status status = resctrl.AssignApp(*group, *app);
  CHECK(status.ok()) << status.ToString();

  double peak = 0.0;
  heatmap.normalized_ips.assign(
      heatmap.way_counts.size(),
      std::vector<double>(heatmap.mba_percents.size(), 0.0));
  for (size_t w = 0; w < heatmap.way_counts.size(); ++w) {
    status = resctrl.SetCacheMask(
        *group, (1ULL << heatmap.way_counts[w]) - 1ULL);
    CHECK(status.ok()) << status.ToString();
    for (size_t m = 0; m < heatmap.mba_percents.size(); ++m) {
      status = resctrl.SetMbaPercent(*group, heatmap.mba_percents[m]);
      CHECK(status.ok()) << status.ToString();
      machine.AdvanceTime(0.1);
      const double ips = machine.LastEpoch(*app).ips;
      heatmap.normalized_ips[w][m] = ips;
      peak = std::max(peak, ips);
    }
  }
  CHECK_GT(peak, 0.0);
  for (std::vector<double>& row : heatmap.normalized_ips) {
    for (double& value : row) {
      value /= peak;
    }
  }
  return heatmap;
}

FairnessGrid SweepMixFairness(
    const WorkloadMix& mix,
    const std::vector<std::vector<uint32_t>>& llc_configs,
    const std::vector<std::vector<uint32_t>>& mba_configs,
    const MachineConfig& machine_config, uint32_t cores_per_app) {
  MachineConfig config = machine_config;
  config.ips_noise_sigma = 0.0;

  SimulatedMachine machine(config);
  Resctrl resctrl(&machine);
  std::vector<AppId> apps;
  std::vector<ResctrlGroupId> groups;
  std::vector<double> solo_full;
  for (const WorkloadDescriptor& descriptor : mix.apps) {
    Result<AppId> app = machine.LaunchApp(descriptor, cores_per_app);
    CHECK(app.ok()) << app.status().ToString();
    apps.push_back(*app);
    Result<ResctrlGroupId> group = resctrl.CreateGroup(
        "grid_" + std::to_string(app->value()));
    CHECK(group.ok()) << group.status().ToString();
    Status status = resctrl.AssignApp(*group, *app);
    CHECK(status.ok()) << status.ToString();
    groups.push_back(*group);
    solo_full.push_back(machine.SoloFullResourceIps(descriptor, cores_per_app));
  }

  auto evaluate = [&]() {
    machine.AdvanceTime(0.1);
    std::vector<double> slowdowns;
    for (size_t i = 0; i < apps.size(); ++i) {
      slowdowns.push_back(Slowdown(solo_full[i], machine.LastEpoch(apps[i]).ips));
    }
    return Unfairness(slowdowns);
  };

  FairnessGrid grid;
  grid.mix_name = mix.name;
  for (const WorkloadDescriptor& descriptor : mix.apps) {
    grid.app_names.push_back(descriptor.short_name);
  }
  grid.llc_configs = llc_configs;
  grid.mba_configs = mba_configs;

  // Normalization baseline: no partitioning (full masks, MBA 100).
  for (size_t i = 0; i < apps.size(); ++i) {
    Status status = resctrl.SetCacheMask(
        groups[i], (1ULL << config.llc.num_ways) - 1ULL);
    CHECK(status.ok()) << status.ToString();
    status = resctrl.SetMbaPercent(groups[i], 100);
    CHECK(status.ok()) << status.ToString();
  }
  grid.nopart_unfairness = evaluate();
  CHECK_GT(grid.nopart_unfairness, 0.0)
      << "degenerate mix: unpartitioned run is perfectly fair";

  grid.normalized_unfairness.assign(
      llc_configs.size(), std::vector<double>(mba_configs.size(), 0.0));
  for (size_t l = 0; l < llc_configs.size(); ++l) {
    const std::vector<uint32_t>& ways = llc_configs[l];
    CHECK_EQ(ways.size(), apps.size());
    uint32_t offset = 0;
    for (size_t i = 0; i < apps.size(); ++i) {
      CHECK_GE(ways[i], 1u);
      const uint64_t bits = ((1ULL << ways[i]) - 1ULL) << offset;
      offset += ways[i];
      Status status = resctrl.SetCacheMask(groups[i], bits);
      CHECK(status.ok()) << status.ToString();
    }
    CHECK_LE(offset, config.llc.num_ways);
    for (size_t m = 0; m < mba_configs.size(); ++m) {
      const std::vector<uint32_t>& levels = mba_configs[m];
      CHECK_EQ(levels.size(), apps.size());
      for (size_t i = 0; i < apps.size(); ++i) {
        Status status = resctrl.SetMbaPercent(groups[i], levels[i]);
        CHECK(status.ok()) << status.ToString();
      }
      grid.normalized_unfairness[l][m] = evaluate() / grid.nopart_unfairness;
    }
  }
  return grid;
}

std::vector<std::vector<uint32_t>> DefaultLlcConfigs() {
  // Ways per app for a four-app mix over an 11-way LLC; includes the
  // configurations the paper calls out ((5,3,2,1), WN at 2 ways, ...).
  return {
      {8, 1, 1, 1}, {5, 3, 2, 1}, {4, 4, 2, 1}, {5, 2, 3, 1},
      {2, 5, 3, 1}, {3, 3, 3, 2}, {2, 3, 2, 4}, {1, 2, 3, 5},
      {2, 2, 2, 5}, {1, 1, 1, 8},
  };
}

std::vector<std::vector<uint32_t>> DefaultMbaConfigs() {
  return {
      {100, 100, 100, 100}, {20, 10, 100, 10}, {40, 40, 40, 10},
      {100, 40, 20, 10},    {10, 100, 40, 20}, {30, 30, 30, 30},
      {10, 20, 40, 100},    {20, 100, 20, 20}, {10, 10, 10, 100},
      {10, 10, 10, 10},
  };
}

}  // namespace copart
