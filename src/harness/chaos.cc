#include "harness/chaos.h"

#include <bit>
#include <cstddef>
#include <memory>
#include <string_view>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "core/resource_manager.h"
#include "machine/simulated_machine.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {
namespace {

// Fault points on the manager's actuation and monitoring path. The storm
// arms a random subset of these.
constexpr std::string_view kStormPoints[] = {
    fault_points::kResctrlCreateGroup,
    fault_points::kResctrlCreateGroupExhausted,
    fault_points::kResctrlRemoveGroup,
    fault_points::kResctrlSetL3,
    fault_points::kResctrlSetMb,
    fault_points::kResctrlSetL3Silent,
    fault_points::kResctrlSetMbSilent,
    fault_points::kResctrlAssignApp,
    fault_points::kPmcDropped,
    fault_points::kPmcStale,
    fault_points::kPmcSaturated,
};

WorkloadDescriptor RosterPick(Rng& rng) {
  switch (rng.NextUint64(10)) {
    case 0: return WaterNsquared();
    case 1: return Cg();
    case 2: return Sp();
    case 3: return OceanNcp();
    case 4: return Swaptions();
    case 5: return Ft();
    case 6: return Fmm();
    case 7: return Ep();
    case 8: return Raytrace();
    default: return OceanCp();
  }
}

bool ContiguousMask(uint64_t mask) {
  if (mask == 0) {
    return false;
  }
  const uint64_t shifted = mask >> std::countr_zero(mask);
  return (shifted & (shifted + 1)) == 0;
}

// Returns the first violated invariant, or "" when all hold.
std::string CheckInvariants(const ResourceManager& manager,
                            size_t live_admitted) {
  if (manager.NumApps() != live_admitted) {
    return "app unaccounted: manager tracks " +
           std::to_string(manager.NumApps()) + " apps, " +
           std::to_string(live_admitted) + " admitted apps are alive";
  }
  if (manager.NumApps() == 0) {
    return "";
  }
  const SystemState& state = manager.current_state();
  if (state.NumApps() != manager.NumApps()) {
    return "system state sized for " + std::to_string(state.NumApps()) +
           " apps, manager tracks " + std::to_string(manager.NumApps());
  }
  if (!state.Valid()) {
    return "system state invalid";
  }
  for (size_t i = 0; i < state.NumApps(); ++i) {
    if (!ContiguousMask(state.WayMaskBits(i))) {
      return "non-contiguous or empty way mask for app " + std::to_string(i);
    }
  }
  return "";
}

}  // namespace

ChaosScheduleResult RunChaosSchedule(const ChaosScheduleConfig& config) {
  ChaosScheduleResult result;
  result.seed = config.seed;

  Rng rng = Rng(config.seed);
  FaultInjector injector(rng.NextUint64());

  MachineConfig machine_config;
  machine_config.seed = rng.NextUint64();
  machine_config.fault_injector = &injector;
  SimulatedMachine machine(machine_config);
  Resctrl resctrl(&machine);
  PerfMonitor monitor(&machine);
  ResourceManagerParams params;
  params.control_period_sec = config.control_period_sec;
  params.seed = rng.NextUint64();
  ResourceManager manager(&resctrl, &monitor, params);
  manager.SetObservability(config.obs);

  // Admit the initial consolidation (fault-free: the injector is unarmed).
  const int num_apps =
      config.min_apps +
      static_cast<int>(rng.NextUint64(
          static_cast<uint64_t>(config.max_apps - config.min_apps + 1)));
  std::vector<AppId> admitted;
  for (int i = 0; i < num_apps; ++i) {
    Result<AppId> app = machine.LaunchApp(RosterPick(rng), 2);
    if (!app.ok()) {
      break;
    }
    if (manager.AddApp(*app).ok()) {
      admitted.push_back(*app);
    } else {
      (void)machine.TerminateApp(*app);
    }
  }

  int period = 0;
  auto run_period = [&]() -> bool {
    machine.AdvanceTime(config.control_period_sec);
    manager.Tick();
    // Drop admitted apps the storm has since terminated (the manager reaps
    // them on the tick we just ran).
    std::erase_if(admitted,
                  [&](AppId app) { return !machine.AppExists(app); });
    const std::string violation = CheckInvariants(manager, admitted.size());
    ++period;
    if (!violation.empty()) {
      result.failure = violation;
      result.failure_period = period;
      return false;
    }
    return true;
  };

  auto finish = [&]() {
    if (MetricsRegistry* metrics = ObsMetrics(config.obs)) {
      manager.ExportMetrics(metrics);
      ExportFaultInjectorMetrics(injector, metrics);
    }
    result.injected_failures = injector.total_failures();
    result.actuation_failures = manager.actuation_failures();
    result.rollbacks = manager.rollbacks();
    result.degraded_entries = manager.degraded_entries();
    result.degraded_recoveries = manager.degraded_recoveries();
    result.quarantines = manager.quarantines();
    result.ended_degraded =
        manager.phase() == ResourceManager::Phase::kDegraded;
  };

  for (int i = 0; i < config.warmup_periods; ++i) {
    if (!run_period()) {
      finish();
      return result;
    }
  }

  // Storm: arm a random subset of the fault points.
  bool any_armed = false;
  for (std::string_view point : kStormPoints) {
    const bool arm = rng.NextBool(0.45);
    const double probability = 0.05 + 0.6 * rng.NextDouble();
    const uint32_t burst = 1 + static_cast<uint32_t>(rng.NextUint64(4));
    if (arm) {
      FaultSpec spec;
      spec.probability = probability;
      spec.burst_length = burst;
      injector.Arm(point, spec);
      any_armed = true;
    }
  }
  if (!any_armed) {
    FaultSpec fallback;
    fallback.probability = 0.5;
    injector.Arm(fault_points::kResctrlSetL3, fallback);
  }

  for (int i = 0; i < config.storm_periods; ++i) {
    if (config.allow_app_churn) {
      const bool kill = rng.NextBool(0.06);
      const bool spawn = rng.NextBool(0.06);
      if (kill && admitted.size() > 1) {
        const size_t victim = rng.NextUint64(admitted.size());
        // Unannounced death: the manager must reap it on its own.
        (void)machine.TerminateApp(admitted[victim]);
      }
      if (spawn && admitted.size() < static_cast<size_t>(config.max_apps)) {
        Result<AppId> app = machine.LaunchApp(RosterPick(rng), 2);
        if (app.ok()) {
          // Admission may fail under injected faults; that must stay a
          // clean rejection, never a crash or a half-tracked app.
          if (manager.AddApp(*app).ok()) {
            admitted.push_back(*app);
          } else {
            (void)machine.TerminateApp(*app);
          }
        }
      }
    }
    if (!run_period()) {
      finish();
      return result;
    }
  }

  injector.DisarmAll();
  for (int i = 0; i < config.recovery_periods; ++i) {
    if (!run_period()) {
      finish();
      return result;
    }
  }

  finish();
  if (result.ended_degraded) {
    result.failure = "manager still degraded " +
                     std::to_string(config.recovery_periods) +
                     " periods after faults cleared";
    result.failure_period = period;
    return result;
  }
  result.passed = true;
  return result;
}

ChaosSuiteResult RunChaosSuite(const ChaosSuiteConfig& config,
                               const ParallelConfig& parallel) {
  return RunChaosSuite(config, parallel, nullptr);
}

ChaosSuiteResult RunChaosSuite(const ChaosSuiteConfig& config,
                               const ParallelConfig& parallel,
                               MetricsRegistry* metrics) {
  // Each cell owns a private bundle; holding them by shared_ptr keeps the
  // per-cell result copyable for ParallelMap. The merge below runs serially
  // in index order (the sweep engine's reduction rule), so `metrics` is
  // bit-identical for every --threads value.
  struct Cell {
    ChaosScheduleResult result;
    std::shared_ptr<Observability> obs;
  };
  const bool collect = metrics != nullptr;
  const Rng seeder(config.base_seed);
  const std::vector<Cell> cells = ParallelMap<Cell>(
      parallel, static_cast<size_t>(config.num_schedules), [&](size_t i) {
        ChaosScheduleConfig schedule = config.schedule;
        schedule.seed = seeder.Fork(i).NextUint64();
        Cell cell;
        if (collect) {
          cell.obs = std::make_shared<Observability>();
          schedule.obs = cell.obs.get();
        }
        cell.result = RunChaosSchedule(schedule);
        return cell;
      });

  ChaosSuiteResult suite;
  suite.num_schedules = config.num_schedules;
  for (const Cell& cell : cells) {
    const ChaosScheduleResult& result = cell.result;
    if (result.passed) {
      ++suite.num_passed;
    } else {
      suite.failures.push_back(result);
    }
    suite.injected_failures += result.injected_failures;
    suite.actuation_failures += result.actuation_failures;
    suite.rollbacks += result.rollbacks;
    suite.degraded_entries += result.degraded_entries;
    suite.degraded_recoveries += result.degraded_recoveries;
    suite.quarantines += result.quarantines;
    if (collect && cell.obs != nullptr) {
      metrics->Merge(cell.obs->metrics);
    }
  }
  return suite;
}

}  // namespace copart
