// MSR-level emulation of Intel RDT allocation registers.
//
// On real hardware the Linux resctrl filesystem is a thin veneer over
// model-specific registers:
//
//   IA32_L3_QOS_MASK_n (0xC90 + n)  — the CAT capacity bit mask of CLOS n
//   IA32_L2_QoS_Ext_BW_Thrtl_n (0xD50 + n) — the MBA delay value of CLOS n
//   IA32_PQR_ASSOC (0xC8F, per core) — bits [63:32] select the active CLOS
//
// RdtMsrBank reproduces that register file with the architectural encoding
// rules (reserved-bit faults, MBA delay values = 100 - level rounded to the
// throttle granularity) so the full software stack can be exercised:
// controller -> resctrl semantics -> register encoding. MsrBackedResctrl
// (tests) demonstrates driving a SimulatedMachine's partitioning state
// exclusively through WRMSR-style writes.
#ifndef COPART_RESCTRL_RDT_MSR_H_
#define COPART_RESCTRL_RDT_MSR_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "common/status.h"

namespace copart {

class FaultInjector;

namespace fault_points {
// A WRMSR to an RDT allocation register fails transiently (e.g. the
// microcode interface is busy); the register keeps its previous value.
inline constexpr std::string_view kMsrWrite = "rdtmsr.wrmsr.unavailable";
}  // namespace fault_points

// Architectural MSR addresses (Intel SDM vol. 4).
constexpr uint32_t kMsrIa32PqrAssoc = 0xC8F;
constexpr uint32_t kMsrIa32L3QosMaskBase = 0xC90;   // + CLOS index.
constexpr uint32_t kMsrIa32MbaThrtlBase = 0xD50;    // + CLOS index.

struct RdtCapabilities {
  uint32_t num_clos = 16;
  uint32_t cbm_bits = 11;        // Valid CBM width (CPUID.0x10.1:EAX).
  uint32_t num_cores = 16;
  uint32_t mba_granularity = 10;  // Throttle delay granularity in percent.
  // Optional fault injection for register writes (not owned; null = off).
  FaultInjector* fault_injector = nullptr;
};

class RdtMsrBank {
 public:
  explicit RdtMsrBank(const RdtCapabilities& capabilities = {});

  // WRMSR: validates the address and the architectural encoding.
  //  - L3 mask MSRs: reserved bits above cbm_bits must be zero; the value
  //    must be a non-empty contiguous run (CAT requirement; hardware
  //    #GP-faults otherwise).
  //  - MBA throttle MSRs: the delay value must be < 100 and a multiple of
  //    the granularity (hardware rounds; we fault to surface bugs).
  //  - PQR_ASSOC (per core, via WritePqrAssoc): CLOS must exist.
  Status Write(uint32_t msr, uint64_t value);

  // RDMSR: kNotFound for unimplemented addresses.
  Result<uint64_t> Read(uint32_t msr) const;

  // Per-core PQR_ASSOC access (the real register is per logical CPU).
  Status WritePqrAssoc(uint32_t core, uint32_t clos);
  Result<uint32_t> ReadPqrAssoc(uint32_t core) const;

  // Decoded views.
  uint64_t ClosCacheMask(uint32_t clos) const;
  // The MBA *level* (100 - programmed delay), i.e. resctrl's MB percent.
  uint32_t ClosMbaLevel(uint32_t clos) const;
  uint32_t CoreClos(uint32_t core) const;

  const RdtCapabilities& capabilities() const { return capabilities_; }

 private:
  bool IsL3MaskMsr(uint32_t msr) const;
  bool IsMbaMsr(uint32_t msr) const;

  RdtCapabilities capabilities_;
  std::unordered_map<uint32_t, uint64_t> registers_;
  std::unordered_map<uint32_t, uint32_t> pqr_assoc_;  // core -> CLOS.
};

}  // namespace copart

#endif  // COPART_RESCTRL_RDT_MSR_H_
