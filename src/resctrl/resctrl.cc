#include "resctrl/resctrl.h"

#include <cstdio>

#include "cache/way_mask.h"
#include "common/fault_injector.h"
#include "common/logging.h"
#include "resctrl/schemata.h"

namespace copart {

Resctrl::Resctrl(SimulatedMachine* machine)
    : machine_(machine),
      injector_(machine ? machine->config().fault_injector : nullptr) {
  CHECK_NE(machine, nullptr);
  groups_.resize(machine_->config().num_clos);
  groups_[0] = Group{.name = "", .clos = 0, .active = true};
}

bool Resctrl::InjectFault(std::string_view point) const {
  return injector_ != nullptr && injector_->ShouldFail(point);
}

Result<ResctrlGroupId> Resctrl::CreateGroup(const std::string& name) {
  if (name.empty()) {
    return InvalidArgumentError("group name must not be empty");
  }
  if (InjectFault(fault_points::kResctrlCreateGroupExhausted)) {
    return ResourceExhaustedError("injected: out of CLOSes");
  }
  if (InjectFault(fault_points::kResctrlCreateGroup)) {
    return UnavailableError("injected: mkdir returned EBUSY");
  }
  for (const Group& group : groups_) {
    if (group.active && group.name == name) {
      return AlreadyExistsError("group already exists: " + name);
    }
  }
  for (uint32_t clos = 1; clos < groups_.size(); ++clos) {
    if (!groups_[clos].active) {
      groups_[clos] = Group{.name = name, .clos = clos, .active = true};
      // Hardware reset state for a fresh CLOS: full mask, no throttling.
      machine_->SetClosWayMask(
          clos, WayMask::Contiguous(0, machine_->config().llc.num_ways));
      machine_->SetClosMbaLevel(clos, MbaLevel());
      return ResctrlGroupId(clos);
    }
  }
  return ResourceExhaustedError("out of CLOSes");
}

Status Resctrl::RemoveGroup(ResctrlGroupId group) {
  if (group.clos() == 0) {
    return InvalidArgumentError("cannot remove the default group");
  }
  if (group.clos() >= groups_.size() || !groups_[group.clos()].active) {
    return NotFoundError("no such group");
  }
  if (InjectFault(fault_points::kResctrlRemoveGroup)) {
    // Fires before any mutation: a failed rmdir leaves the group active and
    // every task still bound to it (tests/resctrl_fs_test.cc pins this).
    return UnavailableError("injected: rmdir returned EBUSY");
  }
  // Apps bound to the removed CLOS fall back to the default group, like
  // tasks returning to the resctrl root.
  for (AppId app : machine_->ListApps()) {
    if (machine_->AppClos(app) == group.clos()) {
      machine_->AssignAppToClos(app, 0);
    }
  }
  groups_[group.clos()].active = false;
  groups_[group.clos()].name.clear();
  return Status::Ok();
}

Result<ResctrlGroupId> Resctrl::FindGroup(const std::string& name) const {
  for (const Group& group : groups_) {
    if (group.active && group.name == name) {
      return ResctrlGroupId(group.clos);
    }
  }
  return NotFoundError("no such group: " + name);
}

std::vector<std::string> Resctrl::GroupNames() const {
  std::vector<std::string> names;
  for (const Group& group : groups_) {
    if (group.active && group.clos != 0) {
      names.push_back(group.name);
    }
  }
  return names;
}

bool Resctrl::GroupActive(uint32_t clos) const {
  return clos < groups_.size() && groups_[clos].active;
}

Status Resctrl::SetCacheMask(ResctrlGroupId group, uint64_t mask_bits) {
  ++schemata_writes_;
  if (!GroupActive(group.clos())) {
    ++schemata_write_failures_;
    return NotFoundError("no such group");
  }
  Result<WayMask> mask =
      WayMask::FromBits(mask_bits, machine_->config().llc.num_ways);
  if (!mask.ok()) {
    ++schemata_write_failures_;
    return mask.status();
  }
  if (InjectFault(fault_points::kResctrlSetL3)) {
    ++schemata_write_failures_;
    return UnavailableError("injected: L3 schemata write returned EBUSY");
  }
  if (InjectFault(fault_points::kResctrlSetL3Silent)) {
    return Status::Ok();  // Claims success; the mask did not take.
  }
  machine_->SetClosWayMask(group.clos(), *mask);
  return Status::Ok();
}

Status Resctrl::SetMbaPercent(ResctrlGroupId group, uint32_t percent) {
  ++schemata_writes_;
  if (!GroupActive(group.clos())) {
    ++schemata_write_failures_;
    return NotFoundError("no such group");
  }
  Result<MbaLevel> level = MbaLevel::FromPercent(percent);
  if (!level.ok()) {
    ++schemata_write_failures_;
    return level.status();
  }
  if (InjectFault(fault_points::kResctrlSetMb)) {
    ++schemata_write_failures_;
    return UnavailableError("injected: MB schemata write returned EBUSY");
  }
  if (InjectFault(fault_points::kResctrlSetMbSilent)) {
    return Status::Ok();  // Claims success; the level did not take.
  }
  machine_->SetClosMbaLevel(group.clos(), *level);
  return Status::Ok();
}

Status Resctrl::AssignApp(ResctrlGroupId group, AppId app) {
  if (!GroupActive(group.clos())) {
    return NotFoundError("no such group");
  }
  if (!machine_->AppExists(app)) {
    return NotFoundError("no such app");
  }
  if (InjectFault(fault_points::kResctrlAssignApp)) {
    return UnavailableError("injected: tasks write returned EBUSY");
  }
  machine_->AssignAppToClos(app, group.clos());
  return Status::Ok();
}

Status Resctrl::SetAppPrefetch(AppId app, uint32_t percent) {
  if (!machine_->AppExists(app)) {
    return NotFoundError("no such app");
  }
  if (percent > 100 || percent % 10 != 0) {
    return InvalidArgumentError("prefetch percent must be 0..100 step 10");
  }
  if (InjectFault(fault_points::kPrefetchWrite)) {
    return UnavailableError("injected: prefetch MSR write failed");
  }
  if (InjectFault(fault_points::kPrefetchWriteSilent)) {
    return Status::Ok();  // Claims success; the write did not take.
  }
  machine_->SetAppPrefetchPercent(app, percent);
  return Status::Ok();
}

Status Resctrl::WriteSchemata(ResctrlGroupId group, const std::string& text) {
  if (!GroupActive(group.clos())) {
    return NotFoundError("no such group");
  }
  Result<Schemata> schemata = ParseSchemata(text);
  if (!schemata.ok()) {
    return schemata.status();
  }
  // Validate everything before applying anything.
  std::optional<WayMask> mask;
  if (schemata->l3_mask.has_value()) {
    Result<WayMask> parsed =
        WayMask::FromBits(*schemata->l3_mask, machine_->config().llc.num_ways);
    if (!parsed.ok()) {
      return parsed.status();
    }
    mask = *parsed;
  }
  std::optional<MbaLevel> level;
  if (schemata->mb_percent.has_value()) {
    Result<MbaLevel> parsed = MbaLevel::FromPercent(*schemata->mb_percent);
    if (!parsed.ok()) {
      return parsed.status();
    }
    level = *parsed;
  }
  if (mask.has_value()) {
    machine_->SetClosWayMask(group.clos(), *mask);
  }
  if (InjectFault(fault_points::kResctrlSchemataPartial)) {
    // The L3 line took effect above but the MB line never applies — the
    // partial-apply race that makes verify-readback necessary.
    return UnavailableError(
        "injected: schemata write applied L3 but failed before MB");
  }
  if (level.has_value()) {
    machine_->SetClosMbaLevel(group.clos(), *level);
  }
  return Status::Ok();
}

double Resctrl::ReadLlcOccupancyBytes(ResctrlGroupId group) const {
  CHECK(GroupActive(group.clos()));
  double occupancy = 0.0;
  for (AppId app : machine_->ListApps()) {
    if (machine_->AppClos(app) == group.clos()) {
      occupancy += machine_->LastEpoch(app).effective_capacity_bytes;
    }
  }
  return occupancy;
}

double Resctrl::ReadMemoryBandwidth(ResctrlGroupId group) const {
  CHECK(GroupActive(group.clos()));
  double bytes_per_sec = 0.0;
  for (AppId app : machine_->ListApps()) {
    if (machine_->AppClos(app) == group.clos()) {
      const AppEpochSnapshot& epoch = machine_->LastEpoch(app);
      bytes_per_sec +=
          epoch.llc_misses_per_sec * machine_->config().llc.line_bytes;
    }
  }
  return bytes_per_sec;
}

std::string Resctrl::ReadSchemata(ResctrlGroupId group) const {
  CHECK(GroupActive(group.clos()));
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "L3:0=%s;MB:0=%u",
                machine_->ClosWayMask(group.clos()).ToHex().c_str(),
                machine_->ClosMbaLevel(group.clos()).percent());
  return buffer;
}

}  // namespace copart
