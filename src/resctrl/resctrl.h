// In-process analogue of the Linux resctrl filesystem.
//
// The paper's prototype is a user-level runtime that partitions the LLC and
// memory bandwidth through /sys/fs/resctrl: it creates one resource group
// per consolidated application, writes the group's schemata (an L3 capacity
// bit mask and an MB throttle percentage), and binds the application's tasks
// to the group. This module exposes the same operations with the same
// validation rules against the SimulatedMachine:
//
//   - group count limited by the CPU's CLOS count,
//   - L3 masks must be non-zero, in-range, and contiguous (kernel rule),
//   - MB values must be 10..100 in steps of 10 (the platform's granularity),
//   - the default group (CLOS 0) always exists and cannot be removed.
//
// CoPart and all baseline policies actuate exclusively through this
// interface, exactly as the user-level prototype does on real hardware.
#ifndef COPART_RESCTRL_RESCTRL_H_
#define COPART_RESCTRL_RESCTRL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "machine/app_id.h"
#include "machine/simulated_machine.h"

namespace copart {

class FaultInjector;

// Fault points of the resctrl surface (common/fault_injector.h). Real
// /sys/fs/resctrl can reject or misapply writes: transient -EBUSY while
// another writer holds rdtgroup_mutex, permanent CLOS exhaustion, and
// partial application across resource lines. Each named point models one
// such condition; all checks fire *before* any state mutation (so a failed
// call leaves the interface untouched) except the explicitly-partial
// points, which exist to exercise the controller's verify-readback and
// rollback path.
namespace fault_points {
// CreateGroup / Mkdir: transient failure vs. permanent CLOS exhaustion.
inline constexpr std::string_view kResctrlCreateGroup =
    "resctrl.create_group.unavailable";
inline constexpr std::string_view kResctrlCreateGroupExhausted =
    "resctrl.create_group.exhausted";
// RemoveGroup / Rmdir: transient failure; bound tasks stay bound.
inline constexpr std::string_view kResctrlRemoveGroup =
    "resctrl.remove_group.unavailable";
// Schemata writes: transient rejection of one resource line.
inline constexpr std::string_view kResctrlSetL3 = "resctrl.set_l3.unavailable";
inline constexpr std::string_view kResctrlSetMb = "resctrl.set_mb.unavailable";
// Silent drops: the write reports success but does not take (invalid-mask
// races on real hardware) — only verify-readback can catch these.
inline constexpr std::string_view kResctrlSetL3Silent =
    "resctrl.set_l3.silent_drop";
inline constexpr std::string_view kResctrlSetMbSilent =
    "resctrl.set_mb.silent_drop";
// Task binding (writes to `tasks`).
inline constexpr std::string_view kResctrlAssignApp =
    "resctrl.assign_app.unavailable";
// Per-app prefetch-throttle MSR writes (the 0x1A4 analogue): transient
// rejection, and a silent drop only verify-readback can catch.
inline constexpr std::string_view kPrefetchWrite =
    "msr.prefetch_write.unavailable";
inline constexpr std::string_view kPrefetchWriteSilent =
    "msr.prefetch_write.silent_drop";
// WriteSchemata applies the L3 line, then fails before the MB line — the
// partial-apply race the transactional controller must roll back.
inline constexpr std::string_view kResctrlSchemataPartial =
    "resctrl.schemata.partial_apply";
}  // namespace fault_points

class ResctrlGroupId {
 public:
  ResctrlGroupId() = default;
  explicit ResctrlGroupId(uint32_t clos) : clos_(clos) {}

  uint32_t clos() const { return clos_; }
  bool operator==(const ResctrlGroupId& other) const = default;

 private:
  uint32_t clos_ = 0;
};

class Resctrl {
 public:
  explicit Resctrl(SimulatedMachine* machine);

  // The always-present default group (CLOS 0, full resources at reset).
  ResctrlGroupId DefaultGroup() const { return ResctrlGroupId(0); }

  // Creates a group backed by a free CLOS. Fails with kResourceExhausted
  // once all CLOSes are in use, and kAlreadyExists on a duplicate name.
  Result<ResctrlGroupId> CreateGroup(const std::string& name);

  // Removes a group; its apps fall back to the default group. The default
  // group itself cannot be removed.
  Status RemoveGroup(ResctrlGroupId group);

  Result<ResctrlGroupId> FindGroup(const std::string& name) const;
  std::vector<std::string> GroupNames() const;

  // Writes the L3 schemata line: validates CAT rules (non-zero, in-range,
  // contiguous bits).
  Status SetCacheMask(ResctrlGroupId group, uint64_t mask_bits);

  // Writes the MB schemata line: validates the 10..100 step-10 range.
  Status SetMbaPercent(ResctrlGroupId group, uint32_t percent);

  // Binds an app's tasks to a group (like writing PIDs into `tasks`).
  Status AssignApp(ResctrlGroupId group, AppId app);

  // Writes the app's prefetcher aggressiveness (the MSR 0x1A4 analogue the
  // CBP-style policy actuates): percent must be 0..100 in steps of 10.
  // 100 = prefetch fully enabled (hardware reset state).
  Status SetAppPrefetch(AppId app, uint32_t percent);

  // Reads back the group's schemata, e.g. "L3:0=7ff;MB:0=100".
  std::string ReadSchemata(ResctrlGroupId group) const;

  // Parses and applies a kernel-format schemata string (resctrl/schemata.h)
  // transactionally: every present entry is validated against the machine's
  // geometry before anything is applied, like the kernel's all-or-nothing
  // schemata write. Entries may update L3 only, MB only, or both.
  Status WriteSchemata(ResctrlGroupId group, const std::string& text);

  // --- Monitoring (the CMT / MBM analogue of Intel RDT) ---
  // Real resctrl exposes per-group llc_occupancy and mbm_*_bytes files;
  // these aggregate over the apps currently bound to the group.

  // Current LLC occupancy attributed to the group's apps, in bytes
  // (Cache Monitoring Technology).
  double ReadLlcOccupancyBytes(ResctrlGroupId group) const;

  // Memory traffic of the group over the last epoch, in bytes/second
  // (Memory Bandwidth Monitoring).
  double ReadMemoryBandwidth(ResctrlGroupId group) const;

  SimulatedMachine& machine() { return *machine_; }
  const SimulatedMachine& machine() const { return *machine_; }

  // Write telemetry: schemata line writes attempted through SetCacheMask /
  // SetMbaPercent and how many returned an error. Silent drops claim
  // success and are counted as such — only verify-readback sees them.
  uint64_t schemata_writes() const { return schemata_writes_; }
  uint64_t schemata_write_failures() const { return schemata_write_failures_; }

 private:
  struct Group {
    std::string name;
    uint32_t clos = 0;
    bool active = false;
  };

  bool GroupActive(uint32_t clos) const;

  // True when the machine's fault injector fails the named point.
  bool InjectFault(std::string_view point) const;

  SimulatedMachine* machine_;  // Not owned.
  FaultInjector* injector_;    // Not owned; null = no injection.
  std::vector<Group> groups_;  // Indexed by CLOS; [0] is the default group.
  uint64_t schemata_writes_ = 0;
  uint64_t schemata_write_failures_ = 0;
};

}  // namespace copart

#endif  // COPART_RESCTRL_RESCTRL_H_
