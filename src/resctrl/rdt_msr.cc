#include "resctrl/rdt_msr.h"

#include <bit>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace copart {

RdtMsrBank::RdtMsrBank(const RdtCapabilities& capabilities)
    : capabilities_(capabilities) {
  CHECK_GT(capabilities_.num_clos, 0u);
  CHECK_GT(capabilities_.cbm_bits, 0u);
  CHECK_LE(capabilities_.cbm_bits, 32u);
  CHECK_GT(capabilities_.mba_granularity, 0u);
  // Reset state: every CLOS has the full mask and no throttling; every core
  // is associated with CLOS 0.
  const uint64_t full_mask = (1ULL << capabilities_.cbm_bits) - 1ULL;
  for (uint32_t clos = 0; clos < capabilities_.num_clos; ++clos) {
    registers_[kMsrIa32L3QosMaskBase + clos] = full_mask;
    registers_[kMsrIa32MbaThrtlBase + clos] = 0;  // Delay 0 = level 100.
  }
  for (uint32_t core = 0; core < capabilities_.num_cores; ++core) {
    pqr_assoc_[core] = 0;
  }
}

bool RdtMsrBank::IsL3MaskMsr(uint32_t msr) const {
  return msr >= kMsrIa32L3QosMaskBase &&
         msr < kMsrIa32L3QosMaskBase + capabilities_.num_clos;
}

bool RdtMsrBank::IsMbaMsr(uint32_t msr) const {
  return msr >= kMsrIa32MbaThrtlBase &&
         msr < kMsrIa32MbaThrtlBase + capabilities_.num_clos;
}

Status RdtMsrBank::Write(uint32_t msr, uint64_t value) {
  if (capabilities_.fault_injector != nullptr &&
      capabilities_.fault_injector->ShouldFail(fault_points::kMsrWrite)) {
    return UnavailableError("injected: WRMSR failed transiently");
  }
  if (IsL3MaskMsr(msr)) {
    const uint64_t valid_bits = (1ULL << capabilities_.cbm_bits) - 1ULL;
    if ((value & ~valid_bits) != 0) {
      return InvalidArgumentError("#GP: reserved CBM bits set");
    }
    if (value == 0) {
      return InvalidArgumentError("#GP: empty CBM");
    }
    const uint64_t shifted = value >> std::countr_zero(value);
    if ((shifted & (shifted + 1)) != 0) {
      return InvalidArgumentError("#GP: non-contiguous CBM");
    }
    registers_[msr] = value;
    return Status::Ok();
  }
  if (IsMbaMsr(msr)) {
    if (value >= 100) {
      return InvalidArgumentError("#GP: MBA delay must be < 100");
    }
    if (value % capabilities_.mba_granularity != 0) {
      return InvalidArgumentError("#GP: MBA delay off the granularity");
    }
    registers_[msr] = value;
    return Status::Ok();
  }
  if (msr == kMsrIa32PqrAssoc) {
    return InvalidArgumentError(
        "PQR_ASSOC is per-core; use WritePqrAssoc(core, clos)");
  }
  return NotFoundError("#GP: unimplemented MSR");
}

Result<uint64_t> RdtMsrBank::Read(uint32_t msr) const {
  auto it = registers_.find(msr);
  if (it == registers_.end()) {
    return NotFoundError("#GP: unimplemented MSR");
  }
  return it->second;
}

Status RdtMsrBank::WritePqrAssoc(uint32_t core, uint32_t clos) {
  if (core >= capabilities_.num_cores) {
    return InvalidArgumentError("no such core");
  }
  if (clos >= capabilities_.num_clos) {
    return InvalidArgumentError("#GP: CLOS beyond CPUID-enumerated count");
  }
  pqr_assoc_[core] = clos;
  return Status::Ok();
}

Result<uint32_t> RdtMsrBank::ReadPqrAssoc(uint32_t core) const {
  auto it = pqr_assoc_.find(core);
  if (it == pqr_assoc_.end()) {
    return InvalidArgumentError("no such core");
  }
  return it->second;
}

uint64_t RdtMsrBank::ClosCacheMask(uint32_t clos) const {
  CHECK_LT(clos, capabilities_.num_clos);
  return registers_.at(kMsrIa32L3QosMaskBase + clos);
}

uint32_t RdtMsrBank::ClosMbaLevel(uint32_t clos) const {
  CHECK_LT(clos, capabilities_.num_clos);
  const uint64_t delay = registers_.at(kMsrIa32MbaThrtlBase + clos);
  return 100 - static_cast<uint32_t>(delay);
}

uint32_t RdtMsrBank::CoreClos(uint32_t core) const {
  auto it = pqr_assoc_.find(core);
  CHECK(it != pqr_assoc_.end()) << "no such core: " << core;
  return it->second;
}

}  // namespace copart
