// Filesystem-surface emulation of /sys/fs/resctrl.
//
// The paper's prototype talks to the kernel exclusively through file
// operations: `mkdir /sys/fs/resctrl/<group>`, writes to `schemata` and
// `tasks`, reads of the monitoring files. ResctrlFs reproduces exactly that
// surface over the Resctrl layer, with kernel-like path semantics:
//
//   mkdir <group>                     -> create a resource group
//   rmdir <group>                     -> remove it (tasks fall back to root)
//   write <group>/schemata "L3:0=.." -> apply (transactional, validated)
//   read  <group>/schemata            -> current allocation
//   write <group>/tasks "<pid>"       -> bind an app (pid == AppId value)
//   read  <group>/tasks               -> newline-separated pids
//   read  <group>/mon_data/mon_L3_00/llc_occupancy   (bytes)
//   read  <group>/mon_data/mon_L3_00/mbm_total_bytes (bytes/s over epoch)
//   read  /info/L3/cbm_mask, /info/L3/num_closids, /info/MB/bandwidth_gran
//
// The root group is addressed by "" or "/". A controller written against
// this class is one file-IO shim away from running on a real kernel.
#ifndef COPART_RESCTRL_RESCTRL_FS_H_
#define COPART_RESCTRL_RESCTRL_FS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "resctrl/resctrl.h"

namespace copart {

namespace fault_points {
// A write(2) to any resctrl file fails with a transient error before
// reaching the group layer (the file-IO shim's own failure mode).
inline constexpr std::string_view kResctrlFsWrite =
    "resctrlfs.write.unavailable";
}  // namespace fault_points

class ResctrlFs {
 public:
  explicit ResctrlFs(Resctrl* resctrl);

  // mkdir/rmdir on group directories. Nested directories are rejected.
  Status Mkdir(const std::string& path);
  Status Rmdir(const std::string& path);

  // Group directory names (excluding the root), like `ls /sys/fs/resctrl`.
  std::vector<std::string> ListGroups() const;

  // read(2)/write(2) on the virtual files described above.
  Result<std::string> ReadFile(const std::string& path) const;
  Status WriteFile(const std::string& path, const std::string& data);

 private:
  struct ParsedPath {
    std::string group;  // "" = root group.
    std::string file;   // Remainder after the group component.
  };

  Result<ParsedPath> Parse(const std::string& path) const;
  Result<ResctrlGroupId> GroupFor(const std::string& name) const;

  Resctrl* resctrl_;  // Not owned.
};

}  // namespace copart

#endif  // COPART_RESCTRL_RESCTRL_FS_H_
