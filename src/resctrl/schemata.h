// Parsing and serialization of resctrl schemata lines.
//
// The kernel interface is textual: a resource group's `schemata` file holds
// lines like
//
//     L3:0=7ff
//     MB:0=100
//
// (one cache-domain entry per line; this single-socket model has exactly
// domain 0). The paper's user-level prototype reads and writes these
// strings, so the library speaks the same format: ParseSchemata accepts
// either the kernel's newline form or the compact "L3:0=7ff;MB:0=100"
// rendering used by Resctrl::ReadSchemata, validates both resources, and
// Resctrl::WriteSchemata applies a parsed update transactionally.
#ifndef COPART_RESCTRL_SCHEMATA_H_
#define COPART_RESCTRL_SCHEMATA_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace copart {

struct Schemata {
  // Either entry may be absent (a write can update just one resource).
  std::optional<uint64_t> l3_mask;
  std::optional<uint32_t> mb_percent;

  // Kernel-style rendering ("L3:0=7ff;MB:0=100"); omits absent entries.
  std::string ToString() const;
};

// Parses one schemata string. Accepts ';' or '\n' as the line separator,
// arbitrary surrounding whitespace per line, "L3"/"MB" resource tags with
// domain 0, and hexadecimal CBM values (with or without 0x). Returns
// kInvalidArgument on malformed input, unknown resources, domains other
// than 0, or duplicate entries. Range/contiguity validation of the values
// themselves happens at apply time against the machine's geometry.
Result<Schemata> ParseSchemata(const std::string& text);

}  // namespace copart

#endif  // COPART_RESCTRL_SCHEMATA_H_
