#include "resctrl/schemata.h"

#include <cctype>
#include <cstdio>
#include <vector>

namespace copart {
namespace {

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == ';' || c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

// Parses "<domain>=<value>" after the resource tag; domain must be 0.
Status ParseDomainValue(const std::string& body, std::string& value_out) {
  const size_t eq = body.find('=');
  if (eq == std::string::npos) {
    return InvalidArgumentError("missing '=' in schemata entry");
  }
  const std::string domain = Trim(body.substr(0, eq));
  if (domain != "0") {
    return InvalidArgumentError("unknown cache domain '" + domain +
                                "' (this machine has domain 0 only)");
  }
  value_out = Trim(body.substr(eq + 1));
  if (value_out.empty()) {
    return InvalidArgumentError("empty value in schemata entry");
  }
  return Status::Ok();
}

Result<uint64_t> ParseHex(const std::string& text) {
  std::string digits = text;
  if (digits.size() > 2 && digits[0] == '0' &&
      (digits[1] == 'x' || digits[1] == 'X')) {
    digits = digits.substr(2);
  }
  if (digits.empty() || digits.size() > 16) {
    return InvalidArgumentError("bad CBM value: " + text);
  }
  uint64_t value = 0;
  for (char c : digits) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return InvalidArgumentError("bad hex digit in CBM value: " + text);
    }
  }
  return value;
}

Result<uint32_t> ParseDecimal(const std::string& text) {
  if (text.empty() || text.size() > 9) {
    return InvalidArgumentError("bad MB value: " + text);
  }
  uint32_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgumentError("bad decimal digit in MB value: " + text);
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  return value;
}

}  // namespace

std::string Schemata::ToString() const {
  std::string result;
  if (l3_mask.has_value()) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "L3:0=%llx",
                  static_cast<unsigned long long>(*l3_mask));
    result += buffer;
  }
  if (mb_percent.has_value()) {
    if (!result.empty()) {
      result += ";";
    }
    result += "MB:0=" + std::to_string(*mb_percent);
  }
  return result;
}

Result<Schemata> ParseSchemata(const std::string& text) {
  Schemata schemata;
  for (const std::string& raw_line : SplitLines(text)) {
    const std::string line = Trim(raw_line);
    if (line.empty()) {
      continue;
    }
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError("missing ':' in schemata line: " + line);
    }
    const std::string resource = Trim(line.substr(0, colon));
    std::string value;
    RETURN_IF_ERROR(ParseDomainValue(line.substr(colon + 1), value));
    if (resource == "L3") {
      if (schemata.l3_mask.has_value()) {
        return InvalidArgumentError("duplicate L3 entry");
      }
      Result<uint64_t> mask = ParseHex(value);
      if (!mask.ok()) {
        return mask.status();
      }
      schemata.l3_mask = *mask;
    } else if (resource == "MB") {
      if (schemata.mb_percent.has_value()) {
        return InvalidArgumentError("duplicate MB entry");
      }
      Result<uint32_t> percent = ParseDecimal(value);
      if (!percent.ok()) {
        return percent.status();
      }
      schemata.mb_percent = *percent;
    } else {
      return InvalidArgumentError("unknown resource '" + resource + "'");
    }
  }
  if (!schemata.l3_mask.has_value() && !schemata.mb_percent.has_value()) {
    return InvalidArgumentError("schemata has no entries");
  }
  return schemata;
}

}  // namespace copart
