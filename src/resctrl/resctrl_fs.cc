#include "resctrl/resctrl_fs.h"

#include <cctype>
#include <cstdio>

#include "common/fault_injector.h"
#include "common/logging.h"

namespace copart {
namespace {

// Splits "a/b/c" into components, ignoring leading/trailing slashes.
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : path) {
    if (c == '/') {
      if (!current.empty()) {
        parts.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    parts.push_back(current);
  }
  return parts;
}

bool IsInfoPath(const std::vector<std::string>& parts) {
  return !parts.empty() && parts[0] == "info";
}

const char* kKnownFiles[] = {"schemata", "tasks"};

bool IsGroupFile(const std::string& name) {
  for (const char* known : kKnownFiles) {
    if (name == known) {
      return true;
    }
  }
  return false;
}

}  // namespace

ResctrlFs::ResctrlFs(Resctrl* resctrl) : resctrl_(resctrl) {
  CHECK_NE(resctrl, nullptr);
}

Result<ResctrlFs::ParsedPath> ResctrlFs::Parse(const std::string& path) const {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return ParsedPath{"", ""};
  }
  // A leading component that names a group; otherwise the path addresses
  // the root group's own files.
  if (IsGroupFile(parts[0]) || parts[0] == "mon_data" || parts[0] == "info") {
    std::string file = parts[0];
    for (size_t i = 1; i < parts.size(); ++i) {
      file += "/" + parts[i];
    }
    return ParsedPath{"", file};
  }
  std::string file;
  for (size_t i = 1; i < parts.size(); ++i) {
    if (i > 1) {
      file += "/";
    }
    file += parts[i];
  }
  return ParsedPath{parts[0], file};
}

Result<ResctrlGroupId> ResctrlFs::GroupFor(const std::string& name) const {
  if (name.empty()) {
    return resctrl_->DefaultGroup();
  }
  return resctrl_->FindGroup(name);
}

Status ResctrlFs::Mkdir(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.size() != 1) {
    return InvalidArgumentError(
        "resctrl supports only one level of group directories");
  }
  if (IsGroupFile(parts[0]) || parts[0] == "info" || parts[0] == "mon_data") {
    return InvalidArgumentError("reserved name: " + parts[0]);
  }
  Result<ResctrlGroupId> group = resctrl_->CreateGroup(parts[0]);
  if (!group.ok()) {
    return group.status();
  }
  return Status::Ok();
}

Status ResctrlFs::Rmdir(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.size() != 1) {
    return InvalidArgumentError("can only rmdir a group directory");
  }
  Result<ResctrlGroupId> group = resctrl_->FindGroup(parts[0]);
  if (!group.ok()) {
    return group.status();
  }
  return resctrl_->RemoveGroup(*group);
}

std::vector<std::string> ResctrlFs::ListGroups() const {
  return resctrl_->GroupNames();
}

Result<std::string> ResctrlFs::ReadFile(const std::string& path) const {
  Result<ParsedPath> parsed = Parse(path);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const std::vector<std::string> file_parts = SplitPath(parsed->file);

  // /info is global, independent of the group prefix.
  if (IsInfoPath(file_parts)) {
    const MachineConfig& config = resctrl_->machine().config();
    if (parsed->file == "info/L3/cbm_mask") {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%llx",
                    static_cast<unsigned long long>(
                        (1ULL << config.llc.num_ways) - 1ULL));
      return std::string(buffer);
    }
    if (parsed->file == "info/L3/num_closids") {
      return std::to_string(config.num_clos);
    }
    if (parsed->file == "info/MB/bandwidth_gran") {
      return std::to_string(MbaLevel::kStep);
    }
    if (parsed->file == "info/MB/min_bandwidth") {
      return std::to_string(MbaLevel::kMin);
    }
    return NotFoundError("no such info file: " + parsed->file);
  }

  Result<ResctrlGroupId> group = GroupFor(parsed->group);
  if (!group.ok()) {
    return group.status();
  }
  if (parsed->file == "schemata") {
    // Kernel format: one resource per line.
    std::string compact = resctrl_->ReadSchemata(*group);
    for (char& c : compact) {
      if (c == ';') {
        c = '\n';
      }
    }
    return compact + "\n";
  }
  if (parsed->file == "tasks") {
    std::string tasks;
    for (AppId app : resctrl_->machine().ListApps()) {
      if (resctrl_->machine().AppClos(app) == group->clos()) {
        tasks += std::to_string(app.value()) + "\n";
      }
    }
    return tasks;
  }
  if (parsed->file == "mon_data/mon_L3_00/llc_occupancy") {
    return std::to_string(static_cast<long long>(
        resctrl_->ReadLlcOccupancyBytes(*group)));
  }
  if (parsed->file == "mon_data/mon_L3_00/mbm_total_bytes") {
    return std::to_string(static_cast<long long>(
        resctrl_->ReadMemoryBandwidth(*group)));
  }
  return NotFoundError("no such file: " + path);
}

Status ResctrlFs::WriteFile(const std::string& path, const std::string& data) {
  Result<ParsedPath> parsed = Parse(path);
  if (!parsed.ok()) {
    return parsed.status();
  }
  FaultInjector* injector = resctrl_->machine().config().fault_injector;
  if (injector != nullptr &&
      injector->ShouldFail(fault_points::kResctrlFsWrite)) {
    return UnavailableError("injected: write returned EBUSY");
  }
  Result<ResctrlGroupId> group = GroupFor(parsed->group);
  if (!group.ok()) {
    return group.status();
  }
  if (parsed->file == "schemata") {
    return resctrl_->WriteSchemata(*group, data);
  }
  if (parsed->file == "tasks") {
    // One pid per write, like the kernel — and *only* a pid: trailing
    // garbage after the digits ("123abc", "123 456") is rejected instead
    // of silently binding pid 123.
    char* end = nullptr;
    const unsigned long pid = std::strtoul(data.c_str(), &end, 10);
    if (end == data.c_str()) {
      return InvalidArgumentError("tasks expects a numeric pid");
    }
    for (const char* c = end; *c != '\0'; ++c) {
      if (!std::isspace(static_cast<unsigned char>(*c))) {
        return InvalidArgumentError("trailing garbage after pid: " + data);
      }
    }
    return resctrl_->AssignApp(*group, AppId(static_cast<uint32_t>(pid)));
  }
  if (SplitPath(parsed->file).empty()) {
    return InvalidArgumentError("cannot write a directory");
  }
  return NotFoundError("no such writable file: " + path);
}

}  // namespace copart
