#include "cluster/fleet.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "core/system_state.h"
#include "harness/serve.h"
#include "harness/whatif.h"
#include "metrics/fairness.h"
#include "obs/audit_log.h"
#include "obs/metrics_registry.h"

namespace copart {
namespace {

LcAppModel MakeLcModel(const FleetJobSpec& spec,
                       const MachineConfig& machine) {
  LcAppModel model;
  model.slo_p95_ms =
      spec.slo_p95_ms > 0.0 ? spec.slo_p95_ms : spec.workload.slo_p95_ms;
  if (model.slo_p95_ms <= 0.0) {
    model.slo_p95_ms = 1.0;
  }
  if (spec.workload.instructions_per_request > 0.0) {
    model.instructions_per_request = spec.workload.instructions_per_request;
  }
  model.initial_offered_rps = spec.offered_rps;
  const WorkloadDescriptor workload = spec.workload;
  const uint32_t cores = spec.cores;
  model.capability_ips = [workload, cores, machine](uint32_t ways) {
    return PredictLcCapabilityIps(workload, cores, ways, machine);
  };
  return model;
}

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kResident:
      return "resident";
    case JobState::kCompleted:
      return "completed";
    case JobState::kShed:
      return "shed";
    case JobState::kLost:
      return "lost";
  }
  return "?";
}

FleetController::FleetController(size_t num_nodes, const FleetParams& params)
    : params_(params) {
  CHECK_GT(num_nodes, 0u) << "fleet needs at least one node";
  nodes_.reserve(num_nodes);
  status_.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    nodes_.push_back(MakeNode(i, /*incarnation=*/0));
  }
}

std::unique_ptr<ClusterNode> FleetController::MakeNode(size_t index,
                                                       uint64_t incarnation) {
  // Per-node streams fork from the fleet seed by (index, incarnation): two
  // nodes never share noise, and a rebooted node replays a fresh — but
  // deterministic — history instead of its dead predecessor's.
  MachineConfig machine = params_.machine;
  machine.seed =
      Rng(params_.seed).Fork(index).Fork(incarnation).NextUint64();
  // Component-level fault points on a shared machine injector would be
  // queried from the PARALLEL tick phase; that is only deterministic (and
  // race-free) at num_threads == 1, which is how the chaos suite runs its
  // inner fleets. Node-level domains always go through params_.injector on
  // the serial control thread instead.
  ResourceManagerParams manager = params_.manager;
  manager.seed = Rng(params_.seed ^ 0x9E3779B97F4A7C15ULL)
                     .Fork(index)
                     .Fork(incarnation)
                     .NextUint64();
  manager.control_period_sec = params_.control_period_sec;
  std::string name = "n";
  name += std::to_string(index);
  return std::make_unique<ClusterNode>(std::move(name), machine, manager,
                                       params_.manage_nodes);
}

bool FleetController::NodeCanHost(size_t node_index, uint32_t cores) const {
  const FleetNodeStatus& s = status_[node_index];
  if (s.health != NodeHealth::kAlive) {
    return false;
  }
  const ClusterNode* node = nodes_[node_index].get();
  if (node->FreeCores() < cores + params_.node_reserve_cores) {
    return false;
  }
  // One LLC way per resident app, as Cluster::PickNode requires.
  return node->machine().ListApps().size() + 1 <=
         node->machine().config().llc.num_ways;
}

int FleetController::PickAdmissionNode(const FleetJobSpec& spec) const {
  // Fleet-wide ceiling first: keep headroom so the next crash wave's
  // refugees and rollbacks still have somewhere to land.
  uint64_t total_cores = 0;
  uint64_t free_cores = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (status_[i].health != NodeHealth::kAlive) {
      continue;
    }
    total_cores += nodes_[i]->machine().config().num_cores;
    free_cores += nodes_[i]->FreeCores();
  }
  if (total_cores == 0) {
    return -1;
  }
  const double used =
      1.0 - static_cast<double>(free_cores) / static_cast<double>(total_cores);
  if (used >= params_.admission_max_core_utilization) {
    return -1;
  }
  // Least-loaded among healthy, fault-free nodes; ties keep the lowest
  // index so placement is independent of thread count.
  int best = -1;
  uint32_t best_free = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (status_[i].fault_active || !NodeCanHost(i, spec.cores)) {
      continue;
    }
    const uint32_t free = nodes_[i]->FreeCores();
    if (best < 0 || free > best_free) {
      best = static_cast<int>(i);
      best_free = free;
    }
  }
  return best;
}

Result<AppId> FleetController::AdmitToNode(size_t node_index,
                                           const FleetJob& job) {
  ClusterNode* node = nodes_[node_index].get();
  if (job.spec.latency_critical && params_.manage_nodes &&
      params_.manager.slo.enabled) {
    return node->AdmitLatencyCritical(
        job.spec.workload, job.spec.cores,
        MakeLcModel(job.spec, node->machine().config()));
  }
  return node->Admit(job.spec.workload, job.spec.cores);
}

Result<FleetJobId> FleetController::Submit(const FleetJobSpec& spec) {
  const FleetJobId id = jobs_.size();
  jobs_.emplace_back();
  FleetJob& job = jobs_.back();
  job.spec = spec;
  ++counters_.submitted;
  const int target = PickAdmissionNode(spec);
  if (target < 0) {
    job.state = JobState::kShed;
    ++counters_.shed_admission;
    AuditNode(static_cast<size_t>(-1), "admission_shed");
    return ResourceExhaustedError("fleet admission: no capacity for " +
                                  spec.workload.name);
  }
  Result<AppId> app = AdmitToNode(static_cast<size_t>(target), job);
  if (!app.ok()) {
    job.state = JobState::kShed;
    ++counters_.shed_admission;
    AuditNode(static_cast<size_t>(-1), "admission_shed");
    return app.status();
  }
  job.state = JobState::kResident;
  job.node = target;
  job.app = *app;
  job.admit_epoch = epoch_;
  return id;
}

void FleetController::RunEpoch() {
  InjectFaults();
  TickNodes();
  UpdateHealth();
  CompleteJobs();
  ShedOverloadedNodes();
  VerifyMigrations();
  PlanMigrations();
  ++epoch_;
  CheckInvariants();
}

void FleetController::InjectFaults() {
  // Recovery countdown first, so a node that finishes rebooting rejoins
  // before this epoch's fault draws can hit it again.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    FleetNodeStatus& s = status_[i];
    if (s.health == NodeHealth::kDown && --s.down_epochs_remaining <= 0) {
      RebootNode(i);
    }
  }
  if (params_.injector == nullptr) {
    return;
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    // Query every point for every node, every epoch, in node order —
    // including down nodes — so the schedule depends only on the injector
    // seed, never on earlier outcomes.
    const bool crash = params_.injector->ShouldFail(fault_points::kNodeCrash);
    const bool slow = params_.injector->ShouldFail(fault_points::kNodeSlow);
    const bool blackout =
        params_.injector->ShouldFail(fault_points::kNodeBlackout);
    FleetNodeStatus& s = status_[i];
    if (s.health == NodeHealth::kDown) {
      continue;
    }
    if (crash) {
      CrashNode(i);
      continue;
    }
    if (slow && s.slow_epochs_remaining == 0) {
      s.slow_epochs_remaining = params_.fault_window_epochs;
      ++counters_.slow_episodes;
      AuditNode(i, "node_slow");
    }
    if (blackout && s.blackout_epochs_remaining == 0) {
      s.blackout_epochs_remaining = params_.fault_window_epochs;
      ++counters_.blackout_episodes;
      AuditNode(i, "node_blackout");
    }
  }
}

void FleetController::CrashNode(size_t node_index) {
  FleetNodeStatus& s = status_[node_index];
  if (s.health == NodeHealth::kDown) {
    return;
  }
  for (FleetJob& job : jobs_) {
    if (job.state == JobState::kResident &&
        job.node == static_cast<int>(node_index)) {
      job.state = JobState::kLost;
      job.node = -1;
      job.verifying = false;
      ++counters_.lost_to_crash;
    }
    // A mid-verify job whose SOURCE died has no home to roll back to; the
    // move stands on whatever its verify verdict turns out to be.
    if (job.verifying && job.migration_source == static_cast<int>(node_index)) {
      job.migration_source = -1;
    }
  }
  const uint64_t reboots = s.reboots;
  s = FleetNodeStatus{};
  s.health = NodeHealth::kDown;
  s.down_epochs_remaining = params_.crash_recovery_epochs;
  s.reboots = reboots;
  ++counters_.crashes;
  AuditNode(node_index, "node_crash");
}

void FleetController::RebootNode(size_t node_index) {
  FleetNodeStatus& s = status_[node_index];
  const uint64_t incarnation = s.reboots + 1;
  // The crashed machine (and any quarantined zombies squatting on it) is
  // discarded wholesale; the replacement starts empty on forked streams.
  nodes_[node_index] = MakeNode(node_index, incarnation);
  s = FleetNodeStatus{};
  s.reboots = incarnation;
  ++counters_.reboots;
  AuditNode(node_index, "node_reboot");
}

void FleetController::TickNodes() {
  const double dt = params_.control_period_sec;
  // Each cell touches only its own node and its own status slot; every
  // cross-node decision happens in the serial phases after the barrier.
  ParallelFor(params_.parallel, nodes_.size(), [&](size_t i) {
    FleetNodeStatus& s = status_[i];
    if (s.health != NodeHealth::kAlive) {
      return;
    }
    ClusterNode* node = nodes_[i].get();
    const double dt_eff =
        s.slow_epochs_remaining > 0 ? dt * params_.slow_factor : dt;
    node->machine().AdvanceTime(dt_eff);
    if (node->managed() && s.blackout_epochs_remaining == 0) {
      node->manager().Tick();
    }
    s.unfairness = node->CurrentUnfairness();
    s.fault_active =
        s.slow_epochs_remaining > 0 || s.blackout_epochs_remaining > 0;
  });
  for (const FleetNodeStatus& s : status_) {
    if (s.health == NodeHealth::kAlive) {
      ++node_ticks_;
    }
  }
}

void FleetController::UpdateHealth() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    FleetNodeStatus& s = status_[i];
    if (s.health != NodeHealth::kAlive) {
      continue;
    }
    if (s.slow_epochs_remaining > 0) {
      --s.slow_epochs_remaining;
    }
    if (s.blackout_epochs_remaining > 0) {
      --s.blackout_epochs_remaining;
    }
    if (s.migration_cooldown > 0) {
      --s.migration_cooldown;
    }
    // Unfairness needs >= 2 residents to mean anything (it is a dispersion
    // statistic); sparse nodes are healthy by definition.
    const bool multi = nodes_[i]->NumJobs() >= 2;
    if (multi && s.unfairness > params_.migrate_unfairness_threshold) {
      ++s.unhealthy_streak;
    } else {
      s.unhealthy_streak = 0;
    }
    if (multi && s.unfairness > params_.shed_unfairness_threshold) {
      ++s.shed_streak;
    } else {
      s.shed_streak = 0;
    }
  }
}

void FleetController::CompleteJobs() {
  for (FleetJob& job : jobs_) {
    if (job.state != JobState::kResident) {
      continue;
    }
    ++job.epochs_resident;
    if (job.spec.lifetime_epochs <= 0 ||
        job.epochs_resident < job.spec.lifetime_epochs) {
      continue;
    }
    Status evicted = nodes_[job.node]->Evict(job.app);
    if (!evicted.ok()) {
      // Transient (e.g. injected) eviction failure: retry next epoch.
      continue;
    }
    job.state = JobState::kCompleted;
    job.node = -1;
    job.verifying = false;
    ++counters_.completed;
  }
}

void FleetController::ShedOverloadedNodes() {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    FleetNodeStatus& s = status_[i];
    if (s.health != NodeHealth::kAlive ||
        s.shed_streak < params_.shed_trend_window) {
      continue;
    }
    // Drop the NEWEST batch job: it has sunk the least work, and the older
    // residents were fine before it arrived. LC jobs are never shed here.
    int victim = -1;
    for (size_t j = 0; j < jobs_.size(); ++j) {
      const FleetJob& job = jobs_[j];
      if (job.state != JobState::kResident ||
          job.node != static_cast<int>(i) || job.spec.latency_critical ||
          job.verifying) {
        continue;
      }
      if (victim < 0 || job.admit_epoch >= jobs_[victim].admit_epoch) {
        victim = static_cast<int>(j);
      }
    }
    if (victim < 0) {
      continue;
    }
    FleetJob& job = jobs_[victim];
    if (!nodes_[i]->Evict(job.app).ok()) {
      continue;  // Retry next epoch.
    }
    job.state = JobState::kShed;
    job.node = -1;
    ++counters_.shed_overload;
    s.shed_streak = 0;
    AuditNode(i, "overload_shed");
  }
}

void FleetController::VerifyMigrations() {
  for (size_t j = 0; j < jobs_.size(); ++j) {
    FleetJob& job = jobs_[j];
    if (!job.verifying || job.state != JobState::kResident) {
      continue;
    }
    const int target = job.node;
    const FleetNodeStatus& ts = status_[target];
    bool fail;
    if (ts.fault_active) {
      // The target caught a fault mid-verify: the prediction no longer
      // describes the node the job landed on. Bail out immediately.
      fail = true;
    } else {
      --job.verify_remaining;
      if (job.verify_remaining > 0) {
        continue;
      }
      // The move succeeded if the target landed where the model promised
      // (within margin), below the migrate threshold (the outcome
      // migration exists to reach), or clearly better than the source it
      // fled. The model's UCP steady state is optimistic against noisy
      // measured unfairness, so judging on the prediction alone would roll
      // back moves that worked.
      const double allowed = std::max(
          {job.predicted_unfairness * params_.verify_margin +
               params_.verify_slack,
           params_.migrate_unfairness_threshold,
           0.8 * job.source_unfairness_at_plan});
      fail = ts.unfairness > allowed;
    }
    if (!fail) {
      AuditMigration(j, job.migration_source, target, "migration_verify_ok",
                     /*rollback=*/false);
      job.verifying = false;
      job.migration_source = -1;
      ++counters_.migrations_completed;
      continue;
    }
    RollbackMigration(j, ts.fault_active ? "migration_verify_fault"
                                         : "migration_verify_unfair");
  }
}

void FleetController::RollbackMigration(FleetJobId job_id,
                                        const char* trigger) {
  FleetJob& job = jobs_[job_id];
  const int target = job.node;
  const int source = job.migration_source;
  job.verifying = false;
  job.migration_source = -1;
  if (source < 0 || !NodeCanHost(static_cast<size_t>(source), job.spec.cores)) {
    // The source died or filled up since the move; the (disappointing)
    // move stands because it is still the only placement that exists.
    ++counters_.migration_failures;
    AuditMigration(job_id, source, target, "migration_rollback_skipped",
                   /*rollback=*/true);
    return;
  }
  Status drained = nodes_[target]->Evict(job.app);
  if (!drained.ok()) {
    ++counters_.migration_failures;
    AuditMigration(job_id, source, target, "migration_rollback_drain_failed",
                   /*rollback=*/true);
    return;
  }
  Result<AppId> back = AdmitToNode(static_cast<size_t>(source), job);
  if (back.ok()) {
    job.node = source;
    job.app = *back;
    ++job.migrations;
    ++counters_.migration_rollbacks;
    status_[source].migration_cooldown = params_.migration_cooldown_epochs;
    AuditMigration(job_id, source, target, trigger, /*rollback=*/true);
    return;
  }
  // Could not go home; try to stay where it was.
  Result<AppId> again = AdmitToNode(static_cast<size_t>(target), job);
  if (again.ok()) {
    job.app = *again;
    ++counters_.migration_failures;
    AuditMigration(job_id, source, target, "migration_rollback_bounced",
                   /*rollback=*/true);
    return;
  }
  // Nowhere to run: the job is shed, and the conservation invariant keeps
  // honest books about it.
  job.state = JobState::kShed;
  job.node = -1;
  ++counters_.shed_migration;
  ++counters_.migration_failures;
  AuditMigration(job_id, source, target, "migration_stranded",
                 /*rollback=*/true);
}

void FleetController::PlanMigrations() {
  // Unhealthy sources, worst unfairness first (ties: lowest index).
  std::vector<size_t> sources;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const FleetNodeStatus& s = status_[i];
    if (s.health == NodeHealth::kAlive &&
        s.unhealthy_streak >= params_.migrate_trend_window &&
        s.migration_cooldown == 0 && nodes_[i]->NumJobs() >= 2) {
      sources.push_back(i);
    }
  }
  std::sort(sources.begin(), sources.end(), [&](size_t a, size_t b) {
    if (status_[a].unfairness != status_[b].unfairness) {
      return status_[a].unfairness > status_[b].unfairness;
    }
    return a < b;
  });

  size_t planned = 0;
  for (size_t source : sources) {
    if (planned >= params_.max_migrations_per_epoch) {
      break;
    }
    // Victim: the worst-slowed resident batch job on the source. LC jobs
    // are pinned — their governor-held way floor travels badly and their
    // SLO is the thing migration exists to protect.
    const SimulatedMachine& machine = nodes_[source]->machine();
    int victim = -1;
    double victim_slowdown = 0.0;
    for (size_t j = 0; j < jobs_.size(); ++j) {
      const FleetJob& job = jobs_[j];
      if (job.state != JobState::kResident ||
          job.node != static_cast<int>(source) || job.spec.latency_critical ||
          job.verifying) {
        continue;
      }
      const double ips = machine.LastEpoch(job.app).ips;
      if (ips <= 0.0) {
        continue;
      }
      const double solo = machine.SoloFullResourceIps(
          machine.Descriptor(job.app), machine.AppCores(job.app));
      const double slowdown = Slowdown(solo, ips);
      if (victim < 0 || slowdown > victim_slowdown) {
        victim = static_cast<int>(j);
        victim_slowdown = slowdown;
      }
    }
    if (victim < 0) {
      continue;
    }
    FleetJob& job = jobs_[victim];

    // Feasible targets, least-loaded first, capped at the scoring fan-out.
    std::vector<size_t> candidates;
    for (size_t t = 0; t < nodes_.size(); ++t) {
      if (t == source || status_[t].fault_active ||
          status_[t].migration_cooldown > 0 ||
          !NodeCanHost(t, job.spec.cores)) {
        continue;
      }
      candidates.push_back(t);
    }
    std::sort(candidates.begin(), candidates.end(), [&](size_t a, size_t b) {
      if (nodes_[a]->FreeCores() != nodes_[b]->FreeCores()) {
        return nodes_[a]->FreeCores() > nodes_[b]->FreeCores();
      }
      return a < b;
    });
    if (candidates.size() > params_.max_target_candidates) {
      candidates.resize(params_.max_target_candidates);
    }
    if (candidates.empty()) {
      continue;
    }

    // Score each candidate with the what-if model: predicted post-CoPart
    // unfairness of (target residents + victim). One prediction per
    // candidate, fanned out in parallel; reduced in candidate order.
    WorkloadDescriptor moving = job.spec.workload;
    moving.num_threads = job.spec.cores;
    const std::vector<double> scores = ParallelMap<double>(
        params_.parallel, candidates.size(), [&](size_t c) {
          ClusterNode* target = nodes_[candidates[c]].get();
          const ResourcePool pool{
              .first_way = 0,
              .num_ways = target->machine().config().llc.num_ways,
              .max_mba_percent = 100};
          std::vector<WorkloadDescriptor> with = target->ResidentWorkloads();
          with.push_back(moving);
          return PredictUcpOutcome(with, pool, target->machine().config(),
                                   /*cores_per_app=*/0)
              .unfairness;
        });
    size_t best = 0;
    for (size_t c = 1; c < candidates.size(); ++c) {
      if (scores[c] < scores[best]) {
        best = c;
      }
    }
    // Only move when the model predicts a real improvement over the
    // source's measured unfairness; otherwise the move is churn.
    if (scores[best] >= status_[source].unfairness) {
      continue;
    }
    const size_t target = candidates[best];
    ++planned;
    ++counters_.migrations_planned;
    AuditMigration(victim, static_cast<int>(source), static_cast<int>(target),
                   "migration_plan", /*rollback=*/false);

    // Drain -> re-admit; failures fall back toward the source.
    Status drained = nodes_[source]->Evict(job.app);
    if (!drained.ok()) {
      ++counters_.migration_failures;
      AuditMigration(victim, static_cast<int>(source),
                     static_cast<int>(target), "migration_drain_failed",
                     /*rollback=*/false);
      continue;
    }
    Result<AppId> moved = AdmitToNode(target, job);
    if (moved.ok()) {
      job.node = static_cast<int>(target);
      job.app = *moved;
      ++job.migrations;
      job.verifying = true;
      job.verify_remaining = params_.verify_window_epochs;
      job.migration_source = static_cast<int>(source);
      job.predicted_unfairness = scores[best];
      job.source_unfairness_at_plan = status_[source].unfairness;
      status_[source].migration_cooldown = params_.migration_cooldown_epochs;
      status_[target].migration_cooldown = params_.migration_cooldown_epochs;
      status_[source].unhealthy_streak = 0;
      AuditMigration(victim, static_cast<int>(source),
                     static_cast<int>(target), "migration_admit",
                     /*rollback=*/false);
      continue;
    }
    Result<AppId> back = AdmitToNode(source, job);
    if (back.ok()) {
      job.app = *back;
      ++counters_.migration_failures;
      AuditMigration(victim, static_cast<int>(source),
                     static_cast<int>(target), "migration_admit_failed",
                     /*rollback=*/true);
      continue;
    }
    job.state = JobState::kShed;
    job.node = -1;
    ++counters_.shed_migration;
    ++counters_.migration_failures;
    AuditMigration(victim, static_cast<int>(source), static_cast<int>(target),
                   "migration_stranded", /*rollback=*/true);
  }
}

void FleetController::Fail(std::string why) {
  invariant_failed_this_check_ = true;
  if (first_violation_.empty()) {
    why.append(" (epoch ");
    why.append(std::to_string(epoch_));
    why.append(")");
    first_violation_ = std::move(why);
    LOG_ERROR << "fleet invariant violation: " << first_violation_;
  }
}

void FleetController::CheckInvariants() {
  ++counters_.conservation_checks;
  invariant_failed_this_check_ = false;

  uint64_t resident = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t lost = 0;
  std::vector<std::vector<AppId>> per_node(nodes_.size());
  for (size_t j = 0; j < jobs_.size(); ++j) {
    const FleetJob& job = jobs_[j];
    switch (job.state) {
      case JobState::kResident:
        ++resident;
        break;
      case JobState::kCompleted:
        ++completed;
        break;
      case JobState::kShed:
        ++shed;
        break;
      case JobState::kLost:
        ++lost;
        break;
    }
    if (job.state != JobState::kResident) {
      continue;
    }
    if (job.node < 0 || job.node >= static_cast<int>(nodes_.size())) {
      Fail("job " + std::to_string(j) + " resident on invalid node " +
           std::to_string(job.node));
      continue;
    }
    if (status_[job.node].health != NodeHealth::kAlive) {
      Fail("job " + std::to_string(j) + " resident on down node " +
           std::to_string(job.node));
      continue;
    }
    per_node[job.node].push_back(job.app);
    if (!nodes_[job.node]->machine().AppExists(job.app)) {
      Fail("job " + std::to_string(j) + " missing from node " +
           std::to_string(job.node));
    }
  }

  // Conservation: every submission is in exactly one terminal-or-resident
  // bucket, and the buckets match the event counters.
  if (counters_.submitted != resident + completed + shed + lost) {
    Fail("conservation: submitted=" + std::to_string(counters_.submitted) +
         " != resident=" + std::to_string(resident) +
         " + completed=" + std::to_string(completed) +
         " + shed=" + std::to_string(shed) +
         " + lost=" + std::to_string(lost));
  }
  if (completed != counters_.completed || lost != counters_.lost_to_crash ||
      shed != counters_.shed_total()) {
    Fail("counter drift: completed " + std::to_string(completed) + "/" +
         std::to_string(counters_.completed) + ", lost " +
         std::to_string(lost) + "/" + std::to_string(counters_.lost_to_crash) +
         ", shed " + std::to_string(shed) + "/" +
         std::to_string(counters_.shed_total()));
  }

  // No double admission, and a full per-node census: the machine runs
  // exactly the fleet's resident jobs plus its quarantined zombies.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (status_[i].health != NodeHealth::kAlive) {
      continue;
    }
    std::vector<AppId>& apps = per_node[i];
    std::sort(apps.begin(), apps.end());
    for (size_t k = 1; k < apps.size(); ++k) {
      if (apps[k] == apps[k - 1]) {
        Fail("double admission of app on node " + std::to_string(i));
      }
    }
    const size_t expected =
        apps.size() + nodes_[i]->quarantined_apps().size();
    const size_t actual = nodes_[i]->machine().ListApps().size();
    if (actual != expected) {
      Fail("census mismatch on node " + std::to_string(i) + ": machine runs " +
           std::to_string(actual) + " apps, fleet accounts for " +
           std::to_string(expected));
    }
  }

  if (invariant_failed_this_check_) {
    ++counters_.invariant_violations;
  }
}

size_t FleetController::AliveNodes() const {
  size_t alive = 0;
  for (const FleetNodeStatus& s : status_) {
    if (s.health == NodeHealth::kAlive) {
      ++alive;
    }
  }
  return alive;
}

size_t FleetController::ResidentJobs() const {
  size_t resident = 0;
  for (const FleetJob& job : jobs_) {
    if (job.state == JobState::kResident) {
      ++resident;
    }
  }
  return resident;
}

std::vector<double> FleetController::AllSlowdowns() const {
  std::vector<double> slowdowns;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (status_[i].health != NodeHealth::kAlive) {
      continue;
    }
    const std::vector<double> node_slowdowns = nodes_[i]->CurrentSlowdowns();
    slowdowns.insert(slowdowns.end(), node_slowdowns.begin(),
                     node_slowdowns.end());
  }
  return slowdowns;
}

double FleetController::MeanNodeUnfairness() const {
  double sum = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (status_[i].health == NodeHealth::kAlive &&
        nodes_[i]->NumJobs() >= 2) {
      sum += status_[i].unfairness;
      ++counted;
    }
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

void FleetController::ExportMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) {
    return;
  }
  const FleetCounters& c = counters_;
  metrics->GetCounter("copart.fleet.jobs.submitted")->Increment(c.submitted);
  metrics->GetCounter("copart.fleet.jobs.completed")->Increment(c.completed);
  metrics->GetCounter("copart.fleet.jobs.shed_admission")
      ->Increment(c.shed_admission);
  metrics->GetCounter("copart.fleet.jobs.shed_overload")
      ->Increment(c.shed_overload);
  metrics->GetCounter("copart.fleet.jobs.shed_migration")
      ->Increment(c.shed_migration);
  metrics->GetCounter("copart.fleet.jobs.lost_to_crash")
      ->Increment(c.lost_to_crash);
  metrics->GetCounter("copart.fleet.faults.crashes")->Increment(c.crashes);
  metrics->GetCounter("copart.fleet.faults.reboots")->Increment(c.reboots);
  metrics->GetCounter("copart.fleet.faults.slow_episodes")
      ->Increment(c.slow_episodes);
  metrics->GetCounter("copart.fleet.faults.blackout_episodes")
      ->Increment(c.blackout_episodes);
  metrics->GetCounter("copart.fleet.migrations.planned")
      ->Increment(c.migrations_planned);
  metrics->GetCounter("copart.fleet.migrations.completed")
      ->Increment(c.migrations_completed);
  metrics->GetCounter("copart.fleet.migrations.rollbacks")
      ->Increment(c.migration_rollbacks);
  metrics->GetCounter("copart.fleet.migrations.failures")
      ->Increment(c.migration_failures);
  metrics->GetCounter("copart.fleet.invariant.checks")
      ->Increment(c.conservation_checks);
  metrics->GetCounter("copart.fleet.invariant.violations")
      ->Increment(c.invariant_violations);
  metrics->GetGauge("copart.fleet.nodes.alive")
      ->Set(static_cast<double>(AliveNodes()));
  metrics->GetGauge("copart.fleet.jobs.resident")
      ->Set(static_cast<double>(ResidentJobs()));
  metrics->GetGauge("copart.fleet.mean_node_unfairness")
      ->Set(MeanNodeUnfairness());
  metrics->GetGauge("copart.fleet.epoch")->Set(static_cast<double>(epoch_));
}

void FleetController::AuditNode(size_t node_index, const char* trigger) {
  AuditLog* audit = ObsAudit(params_.obs);
  if (audit == nullptr) {
    return;
  }
  AuditRecord record;
  record.kind = AuditKind::kNodeFault;
  record.epoch = epoch_;
  record.time_sec = static_cast<double>(epoch_) * params_.control_period_sec;
  record.phase = "fleet";
  record.trigger = trigger;
  record.app_index = node_index == static_cast<size_t>(-1)
                         ? -1
                         : static_cast<int32_t>(node_index);
  audit->Append(record);
}

void FleetController::AuditMigration(FleetJobId job_id, int source, int target,
                                     const char* trigger, bool rollback) {
  AuditLog* audit = ObsAudit(params_.obs);
  if (audit == nullptr) {
    return;
  }
  AuditRecord record;
  record.kind = AuditKind::kMigration;
  record.epoch = epoch_;
  record.time_sec = static_cast<double>(epoch_) * params_.control_period_sec;
  record.phase = "fleet";
  record.trigger = trigger;
  record.app_index = source;
  record.clos = target;
  record.app_id = static_cast<int32_t>(job_id);
  record.rollback = rollback;
  audit->Append(record);
}

}  // namespace copart
