// Fault-tolerant fleet serving: hundreds of CoPart nodes behind one front
// door, with failure domains, admission control, overload shedding, and
// live job migration.
//
// The paper partitions one server; the fleet layer runs the datacenter of
// them that the ROADMAP targets, where the hard problems are robustness
// problems — nodes crash, degrade, and drift into unfairness their local
// CoPart cannot fix ("SLO beyond the Hardware Isolation Limits",
// arxiv 2109.11666). The pieces:
//
//   FleetController — owns N ClusterNodes, ticks them in PARALLEL via
//       common/parallel (each node only touches its own state; every
//       control decision is reduced serially in node-index order
//       afterwards, so results are bit-identical at any --threads).
//   Front door      — Submit() applies admission control (fleet-wide
//       utilization ceiling + per-node reserve) and places by
//       least-loaded-first among healthy nodes; refusals are *shed*, and
//       every shed is accounted for by the conservation invariant.
//   Fault domains   — three seeded node-level fault points
//       (fleet.node.{crash,slow,blackout}, common/fault_injector.h):
//       crash loses the node's jobs and reboots it empty after a recovery
//       window; slow stretches the node's time; blackout freezes its
//       controller. Drawn once per node per epoch on the serial control
//       thread, so schedules replay bit-for-bit from the injector seed.
//   HealthMonitor   — per-node trailing unfairness streaks drive overload
//       shedding (persistent, unfixable unfairness) and migration
//       triggers (persistent but fixable elsewhere).
//   MigrationPlanner — picks the most-harmed job on an unhealthy node and
//       scores candidate target nodes with the what-if model
//       (harness/whatif.h, riding the snapshot/rollback fast path); the
//       move runs drain -> re-admit -> verify -> rollback-on-failure, with
//       every step audited (obs/audit_log.h, AuditKind::kMigration).
//
// Job-conservation invariant, checked every epoch:
//
//   submitted == resident + completed + shed + lost_to_crash
//
// together with no-double-admission (a job is resident on exactly one
// node) and a per-node census (machine app count == resident jobs +
// quarantined zombies). Violations are counted and the first one is
// recorded; the chaos suite (tests/cluster_chaos_test.cc) pins all three
// across 200 seeded fault schedules.
#ifndef COPART_CLUSTER_FLEET_H_
#define COPART_CLUSTER_FLEET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/fault_injector.h"
#include "common/parallel.h"
#include "common/status.h"
#include "machine/machine_config.h"
#include "obs/obs.h"
#include "workload/workload.h"

namespace copart {

// One job submitted to the fleet front door.
struct FleetJobSpec {
  WorkloadDescriptor workload;
  uint32_t cores = 2;
  // Controller epochs until the job finishes on its own; 0 = runs forever.
  int lifetime_epochs = 0;
  // Latency-critical jobs register with the target node's SLO governor
  // (requires FleetParams::manager.slo.enabled) instead of the batch
  // fairness set, and keep the governor's way floor wherever they land.
  bool latency_critical = false;
  double offered_rps = 0.0;   // LC offered load (requests/s).
  double slo_p95_ms = 0.0;    // 0 = workload.slo_p95_ms.
};

enum class JobState : uint8_t {
  kResident,   // Running on exactly one node (possibly mid-verify).
  kCompleted,  // Ran its lifetime and was evicted cleanly.
  kShed,       // Refused at admission or dropped by overload shedding.
  kLost,       // Died with its node's crash.
};

const char* JobStateName(JobState state);

using FleetJobId = uint64_t;

struct FleetJob {
  FleetJobSpec spec;
  JobState state = JobState::kResident;
  int node = -1;  // Resident node index; -1 once terminal.
  AppId app;
  uint64_t admit_epoch = 0;
  int epochs_resident = 0;
  int migrations = 0;  // Completed + rolled-back moves of this job.
  // Live-migration verify window: the job just moved from
  // migration_source and must beat predicted_unfairness on its new node
  // within verify_remaining epochs or be rolled back.
  bool verifying = false;
  int verify_remaining = 0;
  int migration_source = -1;
  double predicted_unfairness = 0.0;
  // Source's measured unfairness when the move was planned — the verify
  // pass also accepts any target clearly better than this.
  double source_unfairness_at_plan = 0.0;
};

enum class NodeHealth : uint8_t { kAlive, kDown };

// Per-node runtime state kept by the fleet's health monitor. Written only
// by the serial control phases and (unfairness/fault_active) by the node's
// own parallel tick cell.
struct FleetNodeStatus {
  NodeHealth health = NodeHealth::kAlive;
  int down_epochs_remaining = 0;      // Crash recovery countdown.
  int slow_epochs_remaining = 0;      // Degraded-time window.
  int blackout_epochs_remaining = 0;  // Controller-blackout window.
  int unhealthy_streak = 0;           // Epochs above the migrate threshold.
  int shed_streak = 0;                // Epochs above the shed threshold.
  int migration_cooldown = 0;
  uint64_t reboots = 0;  // Incarnation counter (seeds fork per reboot).
  double unfairness = 0.0;    // Sampled after the last tick.
  bool fault_active = false;  // Slow or blacked out during the last tick.
};

struct FleetParams {
  uint64_t seed = 0xF1EE7ULL;
  // Per-node templates; each node's machine/manager seeds are forked from
  // `seed` by (node index, incarnation), so a rebooted node gets a fresh
  // but deterministic stream.
  MachineConfig machine;
  ResourceManagerParams manager;
  double control_period_sec = 0.5;
  bool manage_nodes = true;

  // --- Admission control (front door) ---
  // Refuse new jobs when the alive fleet's core utilization is at or above
  // this ceiling (headroom for the next crash wave), or when no healthy
  // node can host the job with `node_reserve_cores` still free after it.
  double admission_max_core_utilization = 0.95;
  uint32_t node_reserve_cores = 0;

  // --- Per-node overload shedding ---
  // A node whose unfairness stays above this for shed_trend_window epochs
  // is beyond what partitioning or migration can fix: drop its newest
  // batch job instead of letting every resident suffer.
  double shed_unfairness_threshold = 0.60;
  int shed_trend_window = 12;

  // --- Health monitor + live migration ---
  double migrate_unfairness_threshold = 0.35;
  int migrate_trend_window = 6;
  int migration_cooldown_epochs = 16;  // Per source/target node.
  size_t max_migrations_per_epoch = 2;
  // What-if scoring fan-out: only the this-many least-loaded feasible
  // targets are predicted (one PredictUcpOutcome per candidate).
  size_t max_target_candidates = 8;
  // Verify window: measured target unfairness must come in at or below
  // predicted * verify_margin + verify_slack, and the target must stay
  // fault-free, or the move is rolled back to the source node.
  int verify_window_epochs = 6;
  double verify_margin = 1.25;
  double verify_slack = 0.02;

  // --- Fault domains ---
  int crash_recovery_epochs = 20;  // Down time before the empty reboot.
  int fault_window_epochs = 12;    // Length of slow/blackout episodes.
  double slow_factor = 0.25;       // Degraded node's time dilation.

  // Fan-out for the parallel node ticks and what-if scoring.
  ParallelConfig parallel;
  // Node fault domains (fleet.node.* points). Not owned; null = no faults.
  FaultInjector* injector = nullptr;
  // Migration/node-fault audit records + fleet metrics. Not owned.
  Observability* obs = nullptr;
};

// Cumulative fleet counters. The conservation invariant ties the job
// counters together; the chaos suite asserts it never breaks.
struct FleetCounters {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed_admission = 0;
  uint64_t shed_overload = 0;
  uint64_t shed_migration = 0;  // Stranded by a failed move/rollback.
  uint64_t lost_to_crash = 0;
  uint64_t crashes = 0;
  uint64_t reboots = 0;
  uint64_t slow_episodes = 0;
  uint64_t blackout_episodes = 0;
  uint64_t migrations_planned = 0;
  uint64_t migrations_completed = 0;  // Verified on the target node.
  uint64_t migration_rollbacks = 0;   // Verified-failed, moved back.
  uint64_t migration_failures = 0;    // Drain/admit path failed outright.
  uint64_t conservation_checks = 0;
  uint64_t invariant_violations = 0;

  uint64_t shed_total() const {
    return shed_admission + shed_overload + shed_migration;
  }
};

class FleetController {
 public:
  FleetController(size_t num_nodes, const FleetParams& params);

  // Front door: places `spec` on the best healthy node, or sheds it
  // (kResourceExhausted) under admission control. Every submission —
  // admitted or shed — is recorded and counted by the invariant.
  Result<FleetJobId> Submit(const FleetJobSpec& spec);

  // One fleet control period: fault draws -> parallel node ticks -> health
  // update -> completions -> shedding -> migration verify/plan -> invariant
  // check. Bit-identical for every parallel.num_threads.
  void RunEpoch();

  // Externally injected crash (the scenario harness's crash waves). All
  // resident jobs are lost; the node reboots empty after the recovery
  // window. No-op on a node that is already down.
  void CrashNode(size_t node_index);

  size_t NumNodes() const { return nodes_.size(); }
  ClusterNode* node(size_t index) { return nodes_[index].get(); }
  const FleetNodeStatus& node_status(size_t index) const {
    return status_[index];
  }
  size_t AliveNodes() const;
  size_t ResidentJobs() const;

  const std::vector<FleetJob>& jobs() const { return jobs_; }
  const FleetCounters& counters() const { return counters_; }
  uint64_t epoch() const { return epoch_; }
  // Alive-node ticks executed so far (the bench's node-ticks/sec metric).
  uint64_t node_ticks() const { return node_ticks_; }

  // First invariant violation ("" when clean) — chaos suites assert empty.
  const std::string& first_violation() const { return first_violation_; }

  // Fleet outcome metrics over the alive nodes.
  std::vector<double> AllSlowdowns() const;
  double MeanNodeUnfairness() const;

  // Dumps the fleet counters and health gauges (copart.fleet.*) into
  // `metrics` (null = no-op), once per run like Cluster::ExportMetrics.
  void ExportMetrics(MetricsRegistry* metrics) const;

 private:
  std::unique_ptr<ClusterNode> MakeNode(size_t index, uint64_t incarnation);
  int PickAdmissionNode(const FleetJobSpec& spec) const;
  Result<AppId> AdmitToNode(size_t node_index, const FleetJob& job);
  bool NodeCanHost(size_t node_index, uint32_t cores) const;

  void InjectFaults();
  void RebootNode(size_t node_index);
  void TickNodes();
  void UpdateHealth();
  void CompleteJobs();
  void ShedOverloadedNodes();
  void VerifyMigrations();
  void PlanMigrations();
  void RollbackMigration(FleetJobId job_id, const char* trigger);
  void CheckInvariants();
  void Fail(std::string why);

  void AuditNode(size_t node_index, const char* trigger);
  void AuditMigration(FleetJobId job_id, int source, int target,
                      const char* trigger, bool rollback);

  FleetParams params_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  std::vector<FleetNodeStatus> status_;
  std::vector<FleetJob> jobs_;
  FleetCounters counters_;
  uint64_t epoch_ = 0;
  uint64_t node_ticks_ = 0;
  std::string first_violation_;
  bool invariant_failed_this_check_ = false;
};

}  // namespace copart

#endif  // COPART_CLUSTER_FLEET_H_
