#include "cluster/cluster.h"

#include <limits>

#include "common/fault_injector.h"
#include "common/logging.h"
#include "harness/whatif.h"
#include "obs/metrics_registry.h"
#include "metrics/fairness.h"

namespace copart {

ClusterNode::ClusterNode(std::string name,
                         const MachineConfig& machine_config,
                         const ResourceManagerParams& manager_params,
                         bool manage)
    : name_(std::move(name)),
      manage_(manage),
      machine_(machine_config),
      resctrl_(&machine_),
      monitor_(&machine_),
      manager_(&resctrl_, &monitor_, manager_params) {}

Result<AppId> ClusterNode::Admit(const WorkloadDescriptor& workload,
                                 uint32_t cores) {
  Result<AppId> app = machine_.LaunchApp(workload, cores);
  if (!app.ok()) {
    return app.status();
  }
  if (!manage_) {
    return app;  // Unmanaged node: the app shares the default group.
  }
  Status added = manager_.AddApp(*app);
  if (!added.ok()) {
    RollbackLaunch(*app);
    return added;
  }
  return app;
}

Result<AppId> ClusterNode::AdmitLatencyCritical(
    const WorkloadDescriptor& workload, uint32_t cores,
    const LcAppModel& model) {
  Result<AppId> app = machine_.LaunchApp(workload, cores);
  if (!app.ok()) {
    return app.status();
  }
  if (!manage_) {
    return app;
  }
  Status registered = manager_.SetLatencyCriticalApp(*app, model);
  if (!registered.ok()) {
    RollbackLaunch(*app);
    return registered;
  }
  return app;
}

void ClusterNode::RollbackLaunch(AppId app) {
  FaultInjector* injector = machine_.config().fault_injector;
  Status terminated =
      injector != nullptr &&
              injector->ShouldFail(fault_points::kClusterAdmitRollback)
          ? UnavailableError("injected: admit rollback terminate")
          : machine_.TerminateApp(app);
  if (!terminated.ok()) {
    // A CHECK here would take down the whole fleet over one zombie. The
    // app was never accepted by the manager; park it on a quarantine list
    // (it squats on its cores until the node reboots) and let the caller
    // see the original admit error.
    quarantined_apps_.push_back(app);
    LOG_WARNING << name_ << ": admit rollback could not terminate app "
                << app.value() << ", quarantined: " << terminated.ToString();
  }
}

Status ClusterNode::Evict(AppId app) {
  if (manage_) {
    Status removed = manager_.RemoveApp(app);
    // LC apps are not in the batch set; their CLOS is reaped on the next
    // tick once the machine-level terminate below lands. Any other error is
    // real and aborts the eviction.
    if (!removed.ok() && removed.code() != StatusCode::kNotFound) {
      return removed;
    }
  }
  return machine_.TerminateApp(app);
}

void ClusterNode::Tick(double dt) {
  machine_.AdvanceTime(dt);
  if (manage_) {
    manager_.Tick();
  }
}

std::vector<WorkloadDescriptor> ClusterNode::ResidentWorkloads() const {
  std::vector<WorkloadDescriptor> workloads;
  for (AppId app : machine_.ListApps()) {
    WorkloadDescriptor descriptor = machine_.Descriptor(app);
    // Report the cores actually granted, not the descriptor's default, so
    // what-if predictions model this node as it really runs.
    descriptor.num_threads = machine_.AppCores(app);
    workloads.push_back(std::move(descriptor));
  }
  return workloads;
}

std::vector<double> ClusterNode::CurrentSlowdowns() const {
  std::vector<double> slowdowns;
  for (AppId app : machine_.ListApps()) {
    const double solo = machine_.SoloFullResourceIps(
        machine_.Descriptor(app), machine_.AppCores(app));
    const double ips = machine_.LastEpoch(app).ips;
    if (ips > 0.0) {
      slowdowns.push_back(Slowdown(solo, ips));
    }
  }
  return slowdowns;
}

double ClusterNode::CurrentUnfairness() const {
  const std::vector<double> slowdowns = CurrentSlowdowns();
  return Unfairness(slowdowns);
}

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kLeastLoaded:
      return "least-loaded";
    case PlacementPolicy::kWhatIfBest:
      return "what-if-best";
    case PlacementPolicy::kCount:
      break;
  }
  return "?";
}

ClusterNode* Cluster::AddNode(const std::string& name,
                              const MachineConfig& machine_config,
                              const ResourceManagerParams& manager_params,
                              bool manage) {
  nodes_.push_back(std::make_unique<ClusterNode>(name, machine_config,
                                                 manager_params, manage));
  return nodes_.back().get();
}

ClusterNode* Cluster::PickNode(const WorkloadDescriptor& workload,
                               uint32_t cores, PlacementPolicy policy) {
  std::vector<ClusterNode*> feasible;
  for (const std::unique_ptr<ClusterNode>& node : nodes_) {
    if (node->FreeCores() >= cores &&
        node->machine().ListApps().size() + 1 <=
            node->machine().config().llc.num_ways) {  // One way per app.
      feasible.push_back(node.get());
    }
  }
  if (feasible.empty()) {
    return nullptr;
  }
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      return feasible.front();
    case PlacementPolicy::kLeastLoaded: {
      ClusterNode* best = feasible.front();
      for (ClusterNode* node : feasible) {
        if (node->FreeCores() > best->FreeCores()) {
          best = node;
        }
      }
      return best;
    }
    case PlacementPolicy::kWhatIfBest: {
      // Predict the equal-share outcome of each node's resident set plus
      // the candidate; prefer the lowest (unfairness, mean slowdown) pair.
      // One what-if prediction per feasible node, fanned out in parallel:
      // each score reads only its own node and simulates on private
      // machine clones inside PredictUcpOutcome.
      const std::vector<double> scores = ParallelMap<double>(
          parallel_, feasible.size(),
          [&](size_t f) {
            ClusterNode* node = feasible[f];
            const ResourcePool pool{
                .first_way = 0,
                .num_ways = node->machine().config().llc.num_ways,
                .max_mba_percent = 100};
            auto total_slowdown = [&](const std::vector<WorkloadDescriptor>&
                                          workloads) {
              // Predict under a UCP-optimized split — the node runs CoPart,
              // so the relevant outcome is post-partitioning, not
              // equal-share. cores_per_app 0: each job keeps its actual
              // core count.
              const WhatIfOutcome outcome =
                  PredictUcpOutcome(workloads, pool,
                                    node->machine().config(),
                                    /*cores_per_app=*/0);
              double sum = 0.0;
              for (double slowdown : outcome.slowdowns) {
                sum += slowdown;
              }
              return sum;
            };
            // Marginal harm of the placement: how much total slowdown the
            // newcomer adds (its own + what it inflicts on the residents).
            // Scoring absolute levels instead would make every job flee
            // the node that already hosts a slow app even when colocating
            // there is harmless. A small slack term breaks ties toward
            // emptier nodes so "free" insensitive jobs do not consume the
            // capacity a future cache-hungry arrival will need.
            std::vector<WorkloadDescriptor> with = node->ResidentWorkloads();
            const double before = with.empty() ? 0.0 : total_slowdown(with);
            WorkloadDescriptor candidate = workload;
            candidate.num_threads = cores;
            with.push_back(std::move(candidate));
            const double marginal_harm = total_slowdown(with) - before;
            const double used_fraction_after =
                1.0 -
                static_cast<double>(node->FreeCores() - cores) /
                    static_cast<double>(node->machine().config().num_cores);
            return marginal_harm + 0.05 * used_fraction_after;
          },
          &whatif_stats_);
      // Reduce in node order: ties keep the earliest feasible node, as the
      // serial loop always did.
      ClusterNode* best = nullptr;
      double best_score = std::numeric_limits<double>::infinity();
      for (size_t f = 0; f < feasible.size(); ++f) {
        if (scores[f] < best_score) {
          best_score = scores[f];
          best = feasible[f];
        }
      }
      return best;
    }
  }
  return nullptr;
}

Result<Placement> Cluster::Submit(const WorkloadDescriptor& workload,
                                  uint32_t cores, PlacementPolicy policy) {
  CHECK(!nodes_.empty()) << "cluster has no nodes";
  ClusterNode* node = PickNode(workload, cores, policy);
  if (node == nullptr) {
    ++placements_rejected_;
    return ResourceExhaustedError("no node can host " + workload.name);
  }
  Result<AppId> app = node->Admit(workload, cores);
  if (!app.ok()) {
    ++placements_rejected_;
    return app.status();
  }
  const size_t slot = static_cast<size_t>(policy);
  CHECK_LT(slot, placement_counts_.size());
  ++placement_counts_[slot];
  return Placement{node, *app};
}

void Cluster::Tick(double dt) {
  for (const std::unique_ptr<ClusterNode>& node : nodes_) {
    node->Tick(dt);
  }
}

double Cluster::MeanNodeUnfairness() const {
  if (nodes_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  size_t counted = 0;
  for (const std::unique_ptr<ClusterNode>& node : nodes_) {
    if (node->NumJobs() >= 2) {
      sum += node->CurrentUnfairness();
      ++counted;
    }
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 0.0;
}

uint64_t Cluster::placements(PlacementPolicy policy) const {
  const size_t slot = static_cast<size_t>(policy);
  CHECK_LT(slot, placement_counts_.size());
  return placement_counts_[slot];
}

void Cluster::ExportMetrics(MetricsRegistry* metrics) const {
  if (metrics == nullptr) {
    return;
  }
  for (const std::unique_ptr<ClusterNode>& node : nodes_) {
    const std::string prefix = "copart.cluster." + node->name();
    metrics->GetGauge(prefix + ".unfairness")->Set(node->CurrentUnfairness());
    metrics->GetGauge(prefix + ".jobs")
        ->Set(static_cast<double>(node->NumJobs()));
    metrics->GetGauge(prefix + ".free_cores")
        ->Set(static_cast<double>(node->FreeCores()));
  }
  metrics->GetGauge("copart.cluster.mean_unfairness")
      ->Set(MeanNodeUnfairness());
  for (size_t p = 0; p < static_cast<size_t>(PlacementPolicy::kCount); ++p) {
    const PlacementPolicy policy = static_cast<PlacementPolicy>(p);
    metrics
        ->GetCounter(std::string("copart.cluster.placements.") +
                     PlacementPolicyName(policy))
        ->Increment(placements(policy));
  }
  metrics->GetCounter("copart.cluster.placements.rejected")
      ->Increment(placements_rejected_);
}

std::vector<double> Cluster::AllSlowdowns() const {
  std::vector<double> slowdowns;
  for (const std::unique_ptr<ClusterNode>& node : nodes_) {
    const std::vector<double> node_slowdowns = node->CurrentSlowdowns();
    slowdowns.insert(slowdowns.end(), node_slowdowns.begin(),
                     node_slowdowns.end());
  }
  return slowdowns;
}

}  // namespace copart
