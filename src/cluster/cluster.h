// Multi-node consolidation: a small cluster of simulated servers, each
// running its own CoPart instance, with placement policies for incoming
// jobs.
//
// The paper's setting is a single consolidated server; datacenters run
// fleets of them, and the operator's first decision — *which node gets the
// job* — determines how much unfairness each node's CoPart has to fix.
// This module composes the library into that workflow:
//
//   ClusterNode  = SimulatedMachine + Resctrl + PerfMonitor +
//                  ResourceManager, ticked together.
//   Cluster      = nodes + a placement policy:
//     kFirstFit    — first node with enough free cores,
//     kLeastLoaded — most free cores,
//     kWhatIfBest  — the node where the what-if model (harness/whatif.h)
//                    predicts the lowest post-placement unfairness.
//
// Per-node CoPart then partitions LLC/MBA among whatever landed there.
// bench_cluster_placement quantifies how much placement quality the
// what-if model buys on top of per-node CoPart.
#ifndef COPART_CLUSTER_CLUSTER_H_
#define COPART_CLUSTER_CLUSTER_H_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/resource_manager.h"
#include "slo/slo_governor.h"
#include "machine/simulated_machine.h"
#include "pmc/perf_monitor.h"
#include "resctrl/resctrl.h"
#include "workload/workload.h"

namespace copart {

class MetricsRegistry;

namespace fault_points {
// The machine-level terminate of a half-admitted app fails during the
// Admit() rollback path — the app is quarantined as a zombie instead of
// taking the node (and the fleet above it) down.
inline constexpr std::string_view kClusterAdmitRollback =
    "cluster.admit.rollback_terminate";
}  // namespace fault_points

class ClusterNode {
 public:
  // manage = false runs the node WITHOUT a partitioning controller (all
  // apps share the full LLC at MBA 100) — the baseline that isolates how
  // much damage placement alone can cause or avoid.
  ClusterNode(std::string name, const MachineConfig& machine_config,
              const ResourceManagerParams& manager_params,
              bool manage = true);

  // Launches the job and hands it to this node's CoPart instance.
  Result<AppId> Admit(const WorkloadDescriptor& workload, uint32_t cores);

  // Launches a latency-critical job and registers it with the node's SLO
  // governor instead of the batch fairness set (requires the manager to run
  // with params.slo.enabled). Unmanaged nodes degrade to a plain Admit.
  Result<AppId> AdmitLatencyCritical(const WorkloadDescriptor& workload,
                                     uint32_t cores, const LcAppModel& model);

  // Evicts a resident job (batch or latency-critical; the manager reaps an
  // LC app's CLOS on its next tick after the machine-level terminate).
  Status Evict(AppId app);

  // One control period: machine time plus the controller tick.
  void Tick(double dt);

  const std::string& name() const { return name_; }
  uint32_t FreeCores() const { return machine_.FreeCores(); }
  size_t NumJobs() const {
    return manage_ ? manager_.NumApps() : machine_.ListApps().size();
  }
  // Workload descriptors of everything currently resident.
  std::vector<WorkloadDescriptor> ResidentWorkloads() const;

  // Ground-truth metrics from the machine model.
  std::vector<double> CurrentSlowdowns() const;
  double CurrentUnfairness() const;

  SimulatedMachine& machine() { return machine_; }
  const SimulatedMachine& machine() const { return machine_; }
  ResourceManager& manager() { return manager_; }
  bool managed() const { return manage_; }

  // Apps whose Admit() rollback could not terminate them: the manager never
  // accepted them, the machine-level kill failed, and they now squat on
  // their cores until the node is rebooted. Accounted for by the fleet's
  // conservation invariant (DESIGN.md §13).
  const std::vector<AppId>& quarantined_apps() const {
    return quarantined_apps_;
  }

 private:
  // Terminates a half-admitted app; quarantines it if the kill fails.
  void RollbackLaunch(AppId app);

  std::string name_;
  bool manage_ = true;
  SimulatedMachine machine_;
  Resctrl resctrl_;
  PerfMonitor monitor_;
  ResourceManager manager_;
  std::vector<AppId> quarantined_apps_;
};

enum class PlacementPolicy {
  kFirstFit,
  kLeastLoaded,
  kWhatIfBest,
  kCount,  // Sentinel: number of policies, not a policy.
};

const char* PlacementPolicyName(PlacementPolicy policy);

struct Placement {
  ClusterNode* node = nullptr;
  AppId app;
};

class Cluster {
 public:
  Cluster() = default;

  // Adds a node; returns a stable pointer owned by the cluster.
  // manage = false disables the per-node CoPart controller.
  ClusterNode* AddNode(const std::string& name,
                       const MachineConfig& machine_config = {},
                       const ResourceManagerParams& manager_params = {},
                       bool manage = true);

  // Places and admits `workload` per `policy`. kResourceExhausted when no
  // node has `cores` free.
  Result<Placement> Submit(const WorkloadDescriptor& workload, uint32_t cores,
                           PlacementPolicy policy);

  void Tick(double dt);

  size_t NumNodes() const { return nodes_.size(); }
  ClusterNode* node(size_t index) { return nodes_[index].get(); }

  // Fleet metrics: mean per-node unfairness and geomean of ALL job
  // slowdowns (cluster-wide fairness of outcome).
  double MeanNodeUnfairness() const;
  std::vector<double> AllSlowdowns() const;

  // Fan-out width for what-if placement scoring (one prediction per
  // feasible node). Scores are reduced in node order, so the chosen node is
  // identical for every thread count.
  void set_parallel(const ParallelConfig& parallel) { parallel_ = parallel; }

  // Fan-out accounting for the most recent what-if placement decision.
  const SweepStats& last_whatif_stats() const { return whatif_stats_; }

  // Dumps fleet health into `metrics` (null = no-op), once per run like
  // ResourceManager::ExportMetrics: per-node gauges
  // copart.cluster.<node>.{unfairness,jobs,free_cores} and cluster-wide
  // placement counters copart.cluster.placements.<policy> plus
  // copart.cluster.placements.rejected — so `copartctl trace cluster`
  // covers multi-node runs with the same artifact surface as single-node
  // ones.
  void ExportMetrics(MetricsRegistry* metrics) const;

  // Successful placements per policy and rejected submissions so far.
  uint64_t placements(PlacementPolicy policy) const;
  uint64_t placements_rejected() const { return placements_rejected_; }

 private:
  ClusterNode* PickNode(const WorkloadDescriptor& workload, uint32_t cores,
                        PlacementPolicy policy);

  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  ParallelConfig parallel_;
  SweepStats whatif_stats_;
  // One slot per PlacementPolicy; sized from the enum's kCount sentinel so
  // adding a policy can never silently write past the end.
  std::array<uint64_t, static_cast<size_t>(PlacementPolicy::kCount)>
      placement_counts_{};
  uint64_t placements_rejected_ = 0;
};

}  // namespace copart

#endif  // COPART_CLUSTER_CLUSTER_H_
