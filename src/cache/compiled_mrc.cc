#include "cache/compiled_mrc.h"

#include <algorithm>
#include <cmath>

#include "cache/miss_ratio_curve.h"
#include "common/logging.h"

namespace copart {
namespace {

// Fritsch-Carlson end-slope: one-sided three-point estimate, clipped so the
// interpolant stays monotone in the first/last segment.
double EndSlope(double h0, double h1, double d0, double d1) {
  double m = ((2.0 * h0 + h1) * d0 - h0 * d1) / (h0 + h1);
  if (m * d0 <= 0.0) {
    return 0.0;
  }
  if (d0 * d1 < 0.0 && std::abs(m) > 3.0 * std::abs(d0)) {
    return 3.0 * d0;
  }
  return m;
}

}  // namespace

CompiledMrc::CompiledMrc(const ReuseProfile& profile,
                         const CompiledMrcOptions& options) {
  CHECK_GE(options.samples_per_decade, 4u);
  CHECK_GT(options.min_capacity_bytes, 0u);

  // Extend the grid past the total footprint so the flat tail (where only
  // streaming misses remain) is inside the table, not in the fallback.
  uint64_t total_ws = 0;
  for (const ReuseComponent& component : profile.components()) {
    total_ws += component.working_set_bytes;
  }
  min_capacity_bytes_ = options.min_capacity_bytes;
  max_capacity_bytes_ =
      std::max(options.max_capacity_bytes,
               std::max(total_ws * 8, min_capacity_bytes_ * 2));

  const double lo = std::log(static_cast<double>(min_capacity_bytes_));
  const double hi = std::log(static_cast<double>(max_capacity_bytes_));
  const double decades = (hi - lo) / std::log(10.0);
  const size_t uniform_count =
      2 + static_cast<size_t>(decades * options.samples_per_decade);

  x_.reserve(uniform_count + profile.components().size() + 1);
  const double step = (hi - lo) / static_cast<double>(uniform_count - 1);
  for (size_t i = 0; i < uniform_count; ++i) {
    x_.push_back(lo + step * static_cast<double>(i));
  }
  x_.back() = hi;
  // Knots at the exact curve's curvature spikes: each component's working
  // set and the total footprint (the hard kink of stream-free mixtures).
  for (const ReuseComponent& component : profile.components()) {
    const double knot = std::log(
        static_cast<double>(component.working_set_bytes));
    if (knot > lo && knot < hi) {
      x_.push_back(knot);
    }
  }
  if (total_ws > 0) {
    const double knot = std::log(static_cast<double>(total_ws));
    if (knot > lo && knot < hi) {
      x_.push_back(knot);
    }
  }
  std::sort(x_.begin(), x_.end());

  // The curve is solved at integer byte counts, so nodes must be deduped in
  // capacity space, not log space: two log nodes can be well-separated yet
  // round to the same byte count (a knot landing within ~1/capacity of a
  // grid node), and a zero-width segment would divide 0/0 in the slope
  // computation.
  std::vector<uint64_t> capacities;
  capacities.reserve(x_.size());
  for (const double lx : x_) {
    const auto capacity = static_cast<uint64_t>(std::llround(std::exp(lx)));
    capacities.push_back(
        std::clamp(capacity, min_capacity_bytes_, max_capacity_bytes_));
  }
  capacities.front() = min_capacity_bytes_;
  capacities.back() = max_capacity_bytes_;
  std::sort(capacities.begin(), capacities.end());
  capacities.erase(std::unique(capacities.begin(), capacities.end()),
                   capacities.end());

  const size_t n = capacities.size();
  x_.resize(n);
  y_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    // Anchor each node at the capacity actually solved so interpolation
    // nodes are exact.
    x_[i] = std::log(static_cast<double>(capacities[i]));
    y_[i] = profile.MissRatio(capacities[i]);
  }
  // The exact curve is monotone non-increasing; bisection jitter could
  // break that by an ULP, which would poison the monotone interpolant.
  // Near-flat segments are snapped exactly flat: marginal-utility policies
  // (UCP) compare MissRatio(w) - MissRatio(w+1) and must see exactly zero
  // for saturated/insensitive curves, not solver noise. The snap raises a
  // node by < 1e-9 and can accumulate only where the true curve is already
  // flat to ~1e-9/segment, far inside the accuracy budget.
  for (size_t i = 1; i < n; ++i) {
    y_[i] = std::min(y_[i], y_[i - 1]);
    if (y_[i - 1] - y_[i] < 1e-9) {
      y_[i] = y_[i - 1];
    }
  }

  // PCHIP (Fritsch-Carlson) node slopes.
  slope_.assign(n, 0.0);
  if (n < 2) {
    return;
  }
  if (n == 2) {
    const double d = (y_[1] - y_[0]) / (x_[1] - x_[0]);
    slope_[0] = slope_[1] = d;
    return;
  }
  for (size_t i = 1; i + 1 < n; ++i) {
    const double h0 = x_[i] - x_[i - 1];
    const double h1 = x_[i + 1] - x_[i];
    const double d0 = (y_[i] - y_[i - 1]) / h0;
    const double d1 = (y_[i + 1] - y_[i]) / h1;
    if (d0 * d1 <= 0.0) {
      slope_[i] = 0.0;
    } else {
      const double w0 = 2.0 * h1 + h0;
      const double w1 = h1 + 2.0 * h0;
      slope_[i] = (w0 + w1) / (w0 / d0 + w1 / d1);
    }
  }
  {
    const double h0 = x_[1] - x_[0];
    const double h1 = x_[2] - x_[1];
    const double d0 = (y_[1] - y_[0]) / h0;
    const double d1 = (y_[2] - y_[1]) / h1;
    slope_[0] = EndSlope(h0, h1, d0, d1);
  }
  {
    const double h0 = x_[n - 1] - x_[n - 2];
    const double h1 = x_[n - 2] - x_[n - 3];
    const double d0 = (y_[n - 1] - y_[n - 2]) / h0;
    const double d1 = (y_[n - 2] - y_[n - 3]) / h1;
    slope_[n - 1] = EndSlope(h0, h1, d0, d1);
  }
}

double CompiledMrc::Evaluate(uint64_t capacity_bytes) const {
  CHECK(Covers(capacity_bytes));
  const double lx = std::log(static_cast<double>(capacity_bytes));
  // Segment lookup; clamp guards the lx == x_.back() edge.
  size_t i = static_cast<size_t>(
      std::upper_bound(x_.begin(), x_.end(), lx) - x_.begin());
  i = std::clamp<size_t>(i, 1, x_.size() - 1) - 1;

  const double h = x_[i + 1] - x_[i];
  const double t = std::clamp((lx - x_[i]) / h, 0.0, 1.0);
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double value = (2.0 * t3 - 3.0 * t2 + 1.0) * y_[i] +
                       (t3 - 2.0 * t2 + t) * h * slope_[i] +
                       (-2.0 * t3 + 3.0 * t2) * y_[i + 1] +
                       (t3 - t2) * h * slope_[i + 1];
  return std::clamp(value, 0.0, 1.0);
}

}  // namespace copart
