// SHARDS-style sampled auxiliary-tag-directory (ATD) online MRC estimation.
//
// CoPart's classifier thresholds (beta/Beta, §5.2) are defined over the LLC
// miss ratio, but real PMCs never expose the *curve* — only the miss count
// at the currently installed allocation. Production partitioners (UCP's ATD
// sets, LFOC's per-group sampled tag directories, SHARDS for software
// caches) estimate the curve online instead: shadow a small sampled slice
// of the cache with full-LRU tag sets and count, for every hit, the LRU
// stack depth at which it landed. A hit at depth d would have been a hit in
// any allocation of more than d ways, so the per-depth hit histogram yields
// the miss ratio at EVERY way count simultaneously:
//
//   miss_ratio(w) = 1 - (sum_{d < w} hits[d]) / sampled_accesses.
//
// Sampling is spatial SET sampling (UCP's ATD): the directory shadows
// round(num_sets * rate) of the real cache's sets, chosen by a seeded hash
// over set indices, and admits every access whose line maps (by the real
// cache's modulo indexing) to a shadowed set. Each shadow row therefore
// observes the COMPLETE reference stream of one real set: per-set load and
// stack-depth statistics are exact, not approximated, at any rate. At rate
// 1 the ATD is simply a full shadow copy and converges to the trace-driven
// cache (and hence, for IRM streams, to Che's curve;
// tests/cache_online_mrc_test.cc pins both bounds).
//
// Callers that cannot afford to offer the full access stream can instead
// pre-sample it (generate a SHARDS-style rate-scaled sub-population — e.g.
// pmc/perf_monitor synthesizes a stratified trace with working sets scaled
// by the rate) and feed RecordSampled(), which bypasses the set filter and
// spreads the scaled stream over the shadow rows by modulo.
//
// Cost: one table lookup + a <= assoc-entry scan per admitted access; the
// directory for the default 1/64 rate is ~45 KB plus a 4-byte-per-real-set
// row map. O(1) memory per query.
#ifndef COPART_CACHE_ONLINE_MRC_H_
#define COPART_CACHE_ONLINE_MRC_H_

#include <cstdint>
#include <vector>

#include "cache/llc_geometry.h"

namespace copart {

struct OnlineMrcConfig {
  LlcGeometry geometry;
  // Fraction of the line-address population admitted into the directory
  // (spatial hash threshold). 1.0 = shadow every set; the default trades
  // ~2 orders of magnitude of space/time for a few percent of error.
  double sampling_rate = 1.0 / 64.0;
  // Perturbs which real sets are shadowed, so co-resident estimators (one
  // per monitored app) sample independent set subsets.
  uint64_t seed = 0;
};

class OnlineMrcEstimator {
 public:
  explicit OnlineMrcEstimator(const OnlineMrcConfig& config);

  // Offers one LLC access (byte address) from the full-rate stream; it
  // reaches the directory iff its real cache set is shadowed.
  void Record(uint64_t address);

  // Feeds one access from a stream the CALLER already sampled at
  // config.sampling_rate (admission is skipped). Mixing Record and
  // RecordSampled on one estimator double-filters; use one or the other.
  void RecordSampled(uint64_t address);

  // Estimated miss ratio were the workload allocated `ways` ways
  // (0..num_ways; 0 always returns 1). Monotonically non-increasing in
  // `ways`. Returns 1.0 before any access has been sampled.
  double MissRatioAtWays(uint32_t ways) const;

  // Capacity-based query, linearly interpolated between way points —
  // drop-in for ReuseProfile::MissRatio on way-granular hardware.
  double MissRatioAtBytes(uint64_t capacity_bytes) const;

  // The whole curve: index w-1 holds MissRatioAtWays(w), w in 1..num_ways.
  std::vector<double> Curve() const;

  // --- Bounded-error interface ---
  // Worst-case ~95% confidence half-width of the estimate: two standard
  // errors of a Bernoulli proportion at the current sample count
  // (1/sqrt(n), the p=1/2 ceiling). 1.0 before any samples. Consumers
  // (pmc/perf_monitor) fall back to raw counters until Converged().
  double ErrorBound() const;
  bool Converged(double bound) const { return ErrorBound() <= bound; }

  uint64_t accesses() const { return accesses_; }
  uint64_t sampled_accesses() const { return sampled_; }
  uint64_t sampled_hits() const;

  // Zeroes the hit/miss statistics but keeps the directory tags warm —
  // used after warm-up and at workload phase changes, where the resident
  // set is still valid but the old reference statistics are not.
  void ResetCounters();
  // Full reset: statistics and tags.
  void Reset();

  const OnlineMrcConfig& config() const { return config_; }
  uint32_t atd_sets() const { return atd_sets_; }

 private:
  static constexpr uint32_t kNoRow = ~0u;

  void Touch(uint32_t set, uint64_t line);

  OnlineMrcConfig config_;
  uint32_t num_ways_;
  uint32_t real_sets_;
  uint32_t atd_sets_;
  // set_row_[real_set]: shadow-directory row for that real cache set, or
  // kNoRow if the set is not sampled.
  std::vector<uint32_t> set_row_;
  // Directory storage: atd_sets_ rows of num_ways_ tags in LRU order
  // (index 0 = MRU). Row fill tracked in set_sizes_.
  std::vector<uint64_t> tags_;
  std::vector<uint32_t> set_sizes_;
  // hits_by_depth_[d]: sampled hits at LRU stack depth d.
  std::vector<uint64_t> hits_by_depth_;
  uint64_t misses_ = 0;
  uint64_t sampled_ = 0;
  uint64_t accesses_ = 0;
};

}  // namespace copart

#endif  // COPART_CACHE_ONLINE_MRC_H_
