// Trace-driven set-associative LLC with Intel CAT way-partitioning semantics.
//
// Semantics reproduced from the CAT specification (paper §2.2):
//   - Each CLOS owns a capacity bit mask (CBM) over the ways.
//   - A *fill* (allocation on miss) may only victimize ways in the filling
//     CLOS's CBM.
//   - A *lookup* hits on a matching line in ANY way, including ways outside
//     the CLOS's CBM (lines survive mask shrinks until evicted).
//   - CBMs of different CLOSes may overlap; overlapping ways are shared.
//
// Replacement is LRU restricted to the allowed ways. The model is used for
// unit/property tests and to validate the analytic miss-ratio curves that the
// fast epoch simulator uses (see cache/miss_ratio_curve.h).
#ifndef COPART_CACHE_WAY_PARTITIONED_CACHE_H_
#define COPART_CACHE_WAY_PARTITIONED_CACHE_H_

#include <cstdint>
#include <vector>

#include "cache/llc_geometry.h"
#include "cache/way_mask.h"

namespace copart {

// Per-CLOS access statistics.
struct CacheClosStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  // Misses that had to evict a valid line (vs. filling an invalid way).
  uint64_t evictions = 0;

  double MissRatio() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class WayPartitionedCache {
 public:
  WayPartitionedCache(const LlcGeometry& geometry, uint32_t num_clos);

  // Sets the CBM for a CLOS. The mask must be valid for this geometry
  // (callers go through WayMask::FromBits or WayMask::Contiguous).
  void SetMask(uint32_t clos, const WayMask& mask);
  const WayMask& mask(uint32_t clos) const;

  // Performs one access on behalf of `clos` at byte address `address`.
  // Returns true on hit. On miss, fills into an allowed way (LRU victim).
  // A CLOS with an empty mask can still hit but its misses do not allocate
  // (matching hardware behaviour for a zero-CBM CLOS, which resctrl forbids
  // creating; the simulator tolerates it for testing).
  bool Access(uint32_t clos, uint64_t address);

  const CacheClosStats& stats(uint32_t clos) const;
  void ResetStats();

  // Number of valid lines currently owned (filled) by `clos`.
  uint64_t OccupancyLines(uint32_t clos) const;

  const LlcGeometry& geometry() const { return geometry_; }
  uint32_t num_clos() const { return static_cast<uint32_t>(masks_.size()); }

 private:
  struct Line {
    uint64_t tag = 0;
    uint64_t lru_stamp = 0;
    uint32_t owner_clos = 0;
    bool valid = false;
  };

  LlcGeometry geometry_;
  uint64_t num_sets_;
  uint64_t lru_clock_ = 0;
  std::vector<Line> lines_;  // num_sets_ * num_ways, row-major by set.
  std::vector<WayMask> masks_;
  std::vector<CacheClosStats> stats_;

  Line* SetBase(uint64_t set) {
    return lines_.data() + set * geometry_.num_ways;
  }
  const Line* SetBase(uint64_t set) const {
    return lines_.data() + set * geometry_.num_ways;
  }
};

}  // namespace copart

#endif  // COPART_CACHE_WAY_PARTITIONED_CACHE_H_
