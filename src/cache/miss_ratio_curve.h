// Analytic miss-ratio curves (MRCs) from reuse mixtures.
//
// The fast epoch simulator cannot afford to replay address traces for every
// (ways x MBA x mix x policy) point in the paper's sweeps, so each workload
// carries a compact *reuse profile*: a mixture of uniform-random working-set
// components plus a streaming component.
//
// The curve is evaluated with Che's approximation for LRU under the
// independent reference model [Che et al. 2002], which is what makes
// mixtures honest: components COMPETE for the capacity instead of each
// seeing all of it, and the streaming component pollutes.
//
//   - Every line of a uniform-random component of working-set size W and
//     access weight w is referenced at per-line rate lambda = w/(W/64); a
//     line is resident iff it was referenced within the cache's
//     characteristic time T, so the component holds W*(1-exp(-lambda*T))
//     bytes and misses with probability exp(-lambda*T). For a single
//     component this reduces to the exact closed form miss = max(0, 1-C/W).
//   - A streaming component (sequential scan much larger than the LLC, e.g.
//     STREAM or the scan phases of OC/CG/FT) always misses AND occupies
//     w_s * T lines (each streamed line lives one characteristic time).
//   - Residual weight (1 - sum of component weights) models accesses to
//     state that fits in any allocation: always hits, negligible footprint.
//
// T is solved per query by bisection on the occupancy balance
//   sum_j W_j*(1-exp(-lambda_j*T)) + stream_bytes(T) = C,
// and the whole curve is cross-validated against the trace-driven
// way-partitioned cache in tests/cache_mrc_validation_test.cc.
//
// The profile shapes each surrogate benchmark's IPS(ways, MBA) surface; the
// calibrated profiles for the paper's Table 2 live in src/workload.
#ifndef COPART_CACHE_MISS_RATIO_CURVE_H_
#define COPART_CACHE_MISS_RATIO_CURVE_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace copart {

class CompiledMrc;

// How MissRatio queries are answered (MachineConfig::mrc_mode selects the
// mode for the whole epoch model):
//   kExact    — per-query bisection on Che's occupancy balance (reference).
//   kCompiled — precompiled monotone-interpolated table (cache/compiled_mrc
//               .h), built once per profile on first use; ~1e-5 relative
//               error, ~50x cheaper per query.
enum class MrcMode {
  kExact,
  kCompiled,
};

struct ReuseComponent {
  double weight = 0.0;             // Fraction of LLC accesses, in [0, 1].
  uint64_t working_set_bytes = 0;  // Uniform-random footprint.
};

class ReuseProfile {
 public:
  // `components` + `streaming_weight` must sum to <= 1; the remainder is
  // always-hit weight. CHECK-fails otherwise.
  ReuseProfile(std::vector<ReuseComponent> components, double streaming_weight);

  // Pure streaming profile (STREAM benchmark).
  static ReuseProfile Streaming();

  // Expected LLC miss ratio when the workload may allocate into
  // `capacity_bytes` of cache. Monotonically non-increasing in capacity.
  // The exact solve; allocation-free (the per-component scratch is
  // precomputed at construction).
  double MissRatio(uint64_t capacity_bytes) const;

  // Mode-dispatched query: kExact calls the solver above; kCompiled answers
  // from Compiled() with an exact-solve fallback for capacities outside the
  // table's grid (notably capacity 0).
  double MissRatio(uint64_t capacity_bytes, MrcMode mode) const;

  // The compiled table, built on first use (thread-safe) and memoized:
  // copies of this profile — e.g. the same descriptor launched on every
  // machine of a sweep — share one table.
  const CompiledMrc& Compiled() const;

  // Total footprint: largest component working set (streaming counts as
  // unbounded and is ignored here).
  uint64_t MaxWorkingSetBytes() const;

  const std::vector<ReuseComponent>& components() const { return components_; }
  double streaming_weight() const { return streaming_weight_; }

 private:
  struct LazyCompiled;  // once_flag + table; shared across profile copies.

  std::vector<ReuseComponent> components_;
  double streaming_weight_;
  // Per-component line counts / per-line reference rates, hoisted out of
  // MissRatio so the hot epoch path never heap-allocates.
  std::vector<double> lines_;
  std::vector<double> rates_;
  double total_lines_ = 0.0;
  std::shared_ptr<LazyCompiled> compiled_;
};

}  // namespace copart

#endif  // COPART_CACHE_MISS_RATIO_CURVE_H_
