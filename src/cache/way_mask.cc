#include "cache/way_mask.h"

#include <bit>
#include <cstdio>

#include "common/logging.h"

namespace copart {

WayMask WayMask::Contiguous(uint32_t first_way, uint32_t count) {
  CHECK_GT(count, 0u);
  CHECK_LE(first_way + count, 64u);
  const uint64_t ones =
      count == 64 ? ~0ULL : ((1ULL << count) - 1ULL);
  return WayMask(ones << first_way);
}

Result<WayMask> WayMask::FromBits(uint64_t bits, uint32_t num_ways) {
  if (bits == 0) {
    return InvalidArgumentError("CBM must have at least one way set");
  }
  if (num_ways < 64 && (bits >> num_ways) != 0) {
    return InvalidArgumentError("CBM sets ways beyond the cache's way count");
  }
  // Contiguity: after shifting out trailing zeros the value must be a run of
  // ones, i.e. value & (value + 1) == 0.
  const uint64_t shifted = bits >> std::countr_zero(bits);
  if ((shifted & (shifted + 1)) != 0) {
    return InvalidArgumentError("CBM bits must be contiguous");
  }
  return WayMask(bits);
}

uint32_t WayMask::CountWays() const {
  return static_cast<uint32_t>(std::popcount(bits_));
}

uint32_t WayMask::FirstWay() const {
  CHECK(!Empty());
  return static_cast<uint32_t>(std::countr_zero(bits_));
}

std::string WayMask::ToHex() const {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llx",
                static_cast<unsigned long long>(bits_));
  return buffer;
}

}  // namespace copart
