#include "cache/online_mrc.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace copart {
namespace {

// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash. Pinned — the
// admission decision per line address must never change across versions or
// sensing goldens shift.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

OnlineMrcEstimator::OnlineMrcEstimator(const OnlineMrcConfig& config)
    : config_(config), num_ways_(config.geometry.num_ways) {
  CHECK_GT(num_ways_, 0u);
  CHECK_GT(config.sampling_rate, 0.0);
  CHECK_LE(config.sampling_rate, 1.0);
  const uint64_t real_sets = config.geometry.NumSets();
  real_sets_ = static_cast<uint32_t>(real_sets);
  atd_sets_ = static_cast<uint32_t>(std::max<uint64_t>(
      1, std::llround(static_cast<double>(real_sets) * config.sampling_rate)));
  // Set sampling (UCP-style ATD): shadow exactly atd_sets_ of the real
  // cache's sets, chosen by seeded hash rank. Every line mapping to a
  // shadowed set is admitted, so each ATD row sees the COMPLETE reference
  // stream of one real set — per-set load and stack-depth statistics match
  // the real cache exactly at any rate, which a per-line admission hash
  // cannot do (it smears contiguous working sets binomially across rows
  // and blurs the MRC knee).
  std::vector<std::pair<uint64_t, uint32_t>> ranked;
  ranked.reserve(real_sets_);
  for (uint32_t s = 0; s < real_sets_; ++s) {
    ranked.emplace_back(Mix64(s ^ config.seed), s);
  }
  std::sort(ranked.begin(), ranked.end());
  set_row_.assign(real_sets_, kNoRow);
  for (uint32_t i = 0; i < atd_sets_; ++i) {
    set_row_[ranked[i].second] = i;
  }
  tags_.assign(static_cast<size_t>(atd_sets_) * num_ways_, 0);
  set_sizes_.assign(atd_sets_, 0);
  hits_by_depth_.assign(num_ways_, 0);
}

void OnlineMrcEstimator::Touch(uint32_t set, uint64_t line) {
  uint64_t* row = &tags_[static_cast<size_t>(set) * num_ways_];
  const uint32_t size = set_sizes_[set];
  // Tag 0 is reserved as the empty slot; remap a real line 0.
  const uint64_t tag = line == 0 ? ~0ULL : line;
  ++sampled_;
  for (uint32_t depth = 0; depth < size; ++depth) {
    if (row[depth] == tag) {
      ++hits_by_depth_[depth];
      // Move to front: the reference order IS the LRU stack.
      for (uint32_t i = depth; i > 0; --i) {
        row[i] = row[i - 1];
      }
      row[0] = tag;
      return;
    }
  }
  ++misses_;
  const uint32_t new_size = std::min(size + 1, num_ways_);
  for (uint32_t i = new_size - 1; i > 0; --i) {
    row[i] = row[i - 1];
  }
  row[0] = tag;
  set_sizes_[set] = new_size;
}

void OnlineMrcEstimator::Record(uint64_t address) {
  ++accesses_;
  const uint64_t line = address / config_.geometry.line_bytes;
  // Same set indexing as the real cache (way_partitioned_cache.cc).
  const uint32_t row = set_row_[line % real_sets_];
  if (row == kNoRow) {
    return;
  }
  Touch(row, line);
}

void OnlineMrcEstimator::RecordSampled(uint64_t address) {
  ++accesses_;
  const uint64_t line = address / config_.geometry.line_bytes;
  // The caller's stream is already scaled down by the sampling rate (its
  // working sets span ~atd_sets_ sets' worth of lines), so modulo indexing
  // over the shadow directory reproduces the real cache's even per-set
  // occupancy for contiguous working sets.
  Touch(static_cast<uint32_t>(line % atd_sets_), line);
}

double OnlineMrcEstimator::MissRatioAtWays(uint32_t ways) const {
  CHECK_LE(ways, num_ways_);
  if (ways == 0 || sampled_ == 0) {
    return 1.0;
  }
  uint64_t hits = 0;
  for (uint32_t d = 0; d < ways; ++d) {
    hits += hits_by_depth_[d];
  }
  return 1.0 - static_cast<double>(hits) / static_cast<double>(sampled_);
}

double OnlineMrcEstimator::MissRatioAtBytes(uint64_t capacity_bytes) const {
  const double way_bytes =
      static_cast<double>(config_.geometry.WayBytes());
  const double ways =
      std::min(static_cast<double>(capacity_bytes) / way_bytes,
               static_cast<double>(num_ways_));
  const uint32_t lo = static_cast<uint32_t>(ways);
  const uint32_t hi = std::min(lo + 1, num_ways_);
  const double frac = ways - static_cast<double>(lo);
  const double at_lo = MissRatioAtWays(lo);
  return at_lo + frac * (MissRatioAtWays(hi) - at_lo);
}

std::vector<double> OnlineMrcEstimator::Curve() const {
  std::vector<double> curve(num_ways_);
  // One cumulative pass instead of num_ways_ calls to MissRatioAtWays.
  uint64_t hits = 0;
  for (uint32_t w = 1; w <= num_ways_; ++w) {
    hits += hits_by_depth_[w - 1];
    curve[w - 1] =
        sampled_ == 0
            ? 1.0
            : 1.0 - static_cast<double>(hits) / static_cast<double>(sampled_);
  }
  return curve;
}

double OnlineMrcEstimator::ErrorBound() const {
  if (sampled_ == 0) {
    return 1.0;
  }
  return std::min(1.0, 1.0 / std::sqrt(static_cast<double>(sampled_)));
}

uint64_t OnlineMrcEstimator::sampled_hits() const {
  uint64_t hits = 0;
  for (uint64_t h : hits_by_depth_) {
    hits += h;
  }
  return hits;
}

void OnlineMrcEstimator::ResetCounters() {
  std::fill(hits_by_depth_.begin(), hits_by_depth_.end(), 0);
  misses_ = 0;
  sampled_ = 0;
  accesses_ = 0;
}

void OnlineMrcEstimator::Reset() {
  ResetCounters();
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(set_sizes_.begin(), set_sizes_.end(), 0);
}

}  // namespace copart
