// Geometry of the simulated shared last-level cache.
//
// Defaults mirror the paper's evaluation platform (Intel Xeon Gold 6130,
// Table 1): 22 MB shared L3, 11 ways, 64-byte lines.
#ifndef COPART_CACHE_LLC_GEOMETRY_H_
#define COPART_CACHE_LLC_GEOMETRY_H_

#include <cstdint>

#include "common/logging.h"
#include "common/units.h"

namespace copart {

struct LlcGeometry {
  uint64_t total_bytes = MiB(22);
  uint32_t num_ways = 11;
  uint32_t line_bytes = 64;

  uint64_t WayBytes() const { return total_bytes / num_ways; }

  uint64_t NumSets() const {
    const uint64_t set_bytes =
        static_cast<uint64_t>(num_ways) * line_bytes;
    CHECK_EQ(total_bytes % set_bytes, 0u)
        << "LLC size must be a whole number of sets";
    return total_bytes / set_bytes;
  }

  // Capacity reachable by a CLOS that owns `ways` ways.
  uint64_t CapacityForWays(uint32_t ways) const {
    CHECK_LE(ways, num_ways);
    return WayBytes() * ways;
  }
};

// Geometry of the paper's evaluation machine.
inline LlcGeometry XeonGold6130Llc() { return LlcGeometry{}; }

}  // namespace copart

#endif  // COPART_CACHE_LLC_GEOMETRY_H_
