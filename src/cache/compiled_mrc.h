// Compiled miss-ratio curves: the exact analytic MRC sampled once into a
// monotone interpolation table.
//
// Every experiment in this repository reduces to millions of epoch solves,
// and each epoch queries ReuseProfile::MissRatio ~7x per app (the shared-
// capacity fixed point plus the two CPI passes). The exact query runs a
// 48-iteration bisection with one exp() per mixture component per iteration
// — precise, but ~100 exp() calls for a number the model only needs to
// ~1e-4. Real UCP-style controllers (and CBP/LFOC) face the same economics
// and precompute their MRCs as lookup tables; CompiledMrc is that idea for
// the simulator.
//
// The table samples the exact curve on a log-spaced capacity grid (the MRC
// is smooth in log-capacity), augmented with knots at each component's
// working-set size and at the total footprint where the exact curve has its
// kinks. Queries interpolate with a PCHIP-style (Fritsch-Carlson) monotone
// cubic, which preserves the curve's defining invariant — monotone
// non-increasing in capacity — segment by segment, so policies that rely on
// "more ways never hurt" (UCP's marginal utilities, the heatmap
// monotonicity tests) keep working. Queries outside the sampled range fall
// back to the exact solve (capacity 0 and multi-GiB what-if probes are not
// hot).
//
// Accuracy at the default density is ~1e-5 relative, validated against the
// exact solver over randomized mixtures in tests/cache_compiled_mrc_test.cc
// (required bound: 1e-4 everywhere).
#ifndef COPART_CACHE_COMPILED_MRC_H_
#define COPART_CACHE_COMPILED_MRC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace copart {

class ReuseProfile;

struct CompiledMrcOptions {
  // Sample density of the log-spaced grid. The default is chosen so the
  // interpolation error stays comfortably under 1e-4 relative for the kind
  // of mixtures the workload surrogates use (see the property test); the
  // binding constraint is the knee where a mixture approaches its total
  // footprint and the curve bends fastest. Query cost is independent of the
  // density (binary search), build cost is linear and paid once.
  uint32_t samples_per_decade = 256;
  // Grid span. Queries below/above fall back to the exact solve; the upper
  // bound is automatically extended to 8x the profile's total footprint so
  // the tail of the curve is always covered.
  uint64_t min_capacity_bytes = 64;
  uint64_t max_capacity_bytes = 1ull << 30;  // 1 GiB
};

class CompiledMrc {
 public:
  CompiledMrc(const ReuseProfile& profile,
              const CompiledMrcOptions& options = {});

  // True iff `capacity_bytes` lies inside the sampled grid; callers must
  // use the exact solve otherwise (ReuseProfile::MissRatio(capacity, mode)
  // does this automatically).
  bool Covers(uint64_t capacity_bytes) const {
    return capacity_bytes >= min_capacity_bytes_ &&
           capacity_bytes <= max_capacity_bytes_;
  }

  // Interpolated miss ratio; requires Covers(capacity_bytes).
  double Evaluate(uint64_t capacity_bytes) const;

  size_t num_samples() const { return x_.size(); }
  uint64_t min_capacity_bytes() const { return min_capacity_bytes_; }
  uint64_t max_capacity_bytes() const { return max_capacity_bytes_; }

 private:
  uint64_t min_capacity_bytes_ = 0;
  uint64_t max_capacity_bytes_ = 0;
  // Interpolation nodes: x_ = ln(capacity_bytes), y_ = exact miss ratio
  // (forced monotone non-increasing), slope_ = PCHIP node derivative.
  std::vector<double> x_;
  std::vector<double> y_;
  std::vector<double> slope_;
};

}  // namespace copart

#endif  // COPART_CACHE_COMPILED_MRC_H_
