// Capacity bit masks (CBMs) with Intel CAT semantics.
//
// A CBM selects which LLC ways a CLOS may allocate into. Hardware (and the
// Linux resctrl interface) requires the set bits to be contiguous and at
// least one bit wide; this type enforces the same rules so the controller
// code above it is exercised against real constraints.
#ifndef COPART_CACHE_WAY_MASK_H_
#define COPART_CACHE_WAY_MASK_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace copart {

class WayMask {
 public:
  // Empty mask (invalid for hardware; used as a sentinel before assignment).
  WayMask() = default;

  // Builds a contiguous mask of `count` ways starting at `first_way`
  // (bit 0 = way 0). CHECK-fails on overflow past 64 ways.
  static WayMask Contiguous(uint32_t first_way, uint32_t count);

  // Validates an arbitrary bit pattern under CAT rules for a cache with
  // `num_ways` ways: non-zero, within range, contiguous.
  static Result<WayMask> FromBits(uint64_t bits, uint32_t num_ways);

  uint64_t bits() const { return bits_; }
  uint32_t CountWays() const;
  bool Empty() const { return bits_ == 0; }
  bool Contains(uint32_t way) const { return (bits_ >> way) & 1u; }
  bool Overlaps(const WayMask& other) const {
    return (bits_ & other.bits_) != 0;
  }

  // Lowest-indexed way in the mask; CHECK-fails on an empty mask.
  uint32_t FirstWay() const;

  // Hex rendering as resctrl schemata would show it, e.g. "7f".
  std::string ToHex() const;

  bool operator==(const WayMask& other) const = default;

 private:
  explicit WayMask(uint64_t bits) : bits_(bits) {}

  uint64_t bits_ = 0;
};

}  // namespace copart

#endif  // COPART_CACHE_WAY_MASK_H_
