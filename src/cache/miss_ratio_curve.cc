#include "cache/miss_ratio_curve.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "cache/compiled_mrc.h"
#include "common/logging.h"

namespace copart {
namespace {

// Cache-line granularity of the occupancy model. All modeled machines in
// this repository use 64-byte lines (Table 1).
constexpr double kLineBytes = 64.0;

// Bisection iterations for the characteristic-time solve; 0.5^48 relative
// precision is far below the model's own accuracy.
constexpr int kBisectionIterations = 48;

}  // namespace

struct ReuseProfile::LazyCompiled {
  std::once_flag once;
  std::unique_ptr<const CompiledMrc> table;
};

ReuseProfile::ReuseProfile(std::vector<ReuseComponent> components,
                           double streaming_weight)
    : components_(std::move(components)),
      streaming_weight_(streaming_weight),
      compiled_(std::make_shared<LazyCompiled>()) {
  CHECK_GE(streaming_weight_, 0.0);
  double total = streaming_weight_;
  lines_.reserve(components_.size());
  rates_.reserve(components_.size());
  for (const ReuseComponent& component : components_) {
    CHECK_GE(component.weight, 0.0);
    CHECK_GT(component.working_set_bytes, 0u);
    total += component.weight;
    const double lines = std::max(
        1.0, static_cast<double>(component.working_set_bytes) / kLineBytes);
    lines_.push_back(lines);
    rates_.push_back(component.weight / lines);
    total_lines_ += lines;
  }
  CHECK_LE(total, 1.0 + 1e-9) << "reuse profile weights exceed 1";
}

ReuseProfile ReuseProfile::Streaming() { return ReuseProfile({}, 1.0); }

double ReuseProfile::MissRatio(uint64_t capacity_bytes) const {
  // Degenerate capacity: nothing is retained.
  if (capacity_bytes == 0) {
    double miss = streaming_weight_;
    for (const ReuseComponent& component : components_) {
      miss += component.weight;
    }
    return std::clamp(miss, 0.0, 1.0);
  }

  const double capacity_lines = static_cast<double>(capacity_bytes) / kLineBytes;
  const size_t n = components_.size();

  // Everything resident and no stream to pollute: no misses.
  if (streaming_weight_ <= 0.0 && total_lines_ <= capacity_lines) {
    return 0.0;
  }

  // Occupancy at characteristic time T: resident fraction of each component
  // plus the streamed lines still aging out (one per stream access, alive
  // for T accesses).
  auto occupancy = [&](double t) {
    double lines_used = streaming_weight_ * t;
    for (size_t j = 0; j < n; ++j) {
      lines_used += lines_[j] * (1.0 - std::exp(-rates_[j] * t));
    }
    return lines_used;
  };

  // Bracket the root of occupancy(T) == capacity_lines. occupancy is
  // strictly increasing whenever this branch is reached.
  double t_hi = 1.0;
  while (occupancy(t_hi) < capacity_lines) {
    t_hi *= 2.0;
    if (t_hi > 1e18) {
      // Numerically everything fits; only the stream misses.
      return std::clamp(streaming_weight_, 0.0, 1.0);
    }
  }
  double t_lo = 0.0;
  for (int i = 0; i < kBisectionIterations; ++i) {
    const double mid = 0.5 * (t_lo + t_hi);
    if (occupancy(mid) < capacity_lines) {
      t_lo = mid;
    } else {
      t_hi = mid;
    }
  }
  const double t = 0.5 * (t_lo + t_hi);

  double miss = streaming_weight_;
  for (size_t j = 0; j < n; ++j) {
    miss += components_[j].weight * std::exp(-rates_[j] * t);
  }
  return std::clamp(miss, 0.0, 1.0);
}

double ReuseProfile::MissRatio(uint64_t capacity_bytes, MrcMode mode) const {
  if (mode == MrcMode::kCompiled) {
    const CompiledMrc& table = Compiled();
    if (table.Covers(capacity_bytes)) {
      return table.Evaluate(capacity_bytes);
    }
  }
  return MissRatio(capacity_bytes);
}

const CompiledMrc& ReuseProfile::Compiled() const {
  std::call_once(compiled_->once, [this] {
    compiled_->table = std::make_unique<const CompiledMrc>(*this);
  });
  return *compiled_->table;
}

uint64_t ReuseProfile::MaxWorkingSetBytes() const {
  uint64_t max_ws = 0;
  for (const ReuseComponent& component : components_) {
    max_ws = std::max(max_ws, component.working_set_bytes);
  }
  return max_ws;
}

}  // namespace copart
