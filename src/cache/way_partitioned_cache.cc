#include "cache/way_partitioned_cache.h"

#include "common/logging.h"

namespace copart {

WayPartitionedCache::WayPartitionedCache(const LlcGeometry& geometry,
                                         uint32_t num_clos)
    : geometry_(geometry), num_sets_(geometry.NumSets()) {
  CHECK_GT(num_clos, 0u);
  CHECK_LE(geometry_.num_ways, 64u);
  lines_.resize(num_sets_ * geometry_.num_ways);
  // Every CLOS starts with the full mask, as hardware does after reset.
  masks_.assign(num_clos, WayMask::Contiguous(0, geometry_.num_ways));
  stats_.resize(num_clos);
}

void WayPartitionedCache::SetMask(uint32_t clos, const WayMask& mask) {
  CHECK_LT(clos, masks_.size());
  if (!mask.Empty()) {
    CHECK_LE(mask.FirstWay() + mask.CountWays(), geometry_.num_ways);
  }
  masks_[clos] = mask;
}

const WayMask& WayPartitionedCache::mask(uint32_t clos) const {
  CHECK_LT(clos, masks_.size());
  return masks_[clos];
}

bool WayPartitionedCache::Access(uint32_t clos, uint64_t address) {
  CHECK_LT(clos, masks_.size());
  const uint64_t line_address = address / geometry_.line_bytes;
  const uint64_t set = line_address % num_sets_;
  const uint64_t tag = line_address / num_sets_;

  CacheClosStats& stats = stats_[clos];
  ++stats.accesses;
  ++lru_clock_;

  Line* base = SetBase(set);

  // Lookup across ALL ways: CAT only constrains fills, not hits.
  for (uint32_t way = 0; way < geometry_.num_ways; ++way) {
    Line& line = base[way];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = lru_clock_;
      ++stats.hits;
      return true;
    }
  }

  ++stats.misses;

  const WayMask& mask = masks_[clos];
  if (mask.Empty()) {
    return false;  // No allocation rights; the miss bypasses the cache.
  }

  // Fill: prefer an invalid allowed way, otherwise evict the LRU allowed way.
  Line* victim = nullptr;
  for (uint32_t way = 0; way < geometry_.num_ways; ++way) {
    if (!mask.Contains(way)) {
      continue;
    }
    Line& line = base[way];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru_stamp < victim->lru_stamp) {
      victim = &line;
    }
  }
  CHECK_NE(victim, nullptr);
  if (victim->valid) {
    ++stats.evictions;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->owner_clos = clos;
  victim->lru_stamp = lru_clock_;
  return false;
}

const CacheClosStats& WayPartitionedCache::stats(uint32_t clos) const {
  CHECK_LT(clos, stats_.size());
  return stats_[clos];
}

void WayPartitionedCache::ResetStats() {
  for (CacheClosStats& stats : stats_) {
    stats = CacheClosStats{};
  }
}

uint64_t WayPartitionedCache::OccupancyLines(uint32_t clos) const {
  CHECK_LT(clos, masks_.size());
  uint64_t count = 0;
  for (const Line& line : lines_) {
    if (line.valid && line.owner_clos == clos) {
      ++count;
    }
  }
  return count;
}

}  // namespace copart
