#include "slo/bandit_governor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "serve/queue_model.h"

namespace copart {

constexpr std::array<int, 4> BanditSloGovernor::kArms;

BanditSloGovernor::BanditSloGovernor(const SloParams& params,
                                     LcAppModel model)
    : SloGovernor(params, std::move(model)) {
  CHECK_GE(params_.bandit.exploration_c, 0.0);
  CHECK_GE(params_.bandit.way_cost, 0.0);
  CHECK_GT(params_.bandit.load_bucket_step, 1.0);
}

int BanditSloGovernor::LoadBucket(double offered_rps) const {
  if (!(offered_rps > 1.0)) return 0;
  return static_cast<int>(
      std::floor(std::log(offered_rps) /
                 std::log(params_.bandit.load_bucket_step)));
}

// Identical arithmetic to the threshold walk: the bandit perturbs the
// analytic base width, it does not replace it.
SloDecision BanditSloGovernor::SmallestMeeting(double offered_rps,
                                               uint32_t max_ways) {
  const double target_ms = model_.slo_p95_ms / params_.headroom;
  const uint32_t floor = std::min(params_.lc_way_floor, max_ways);
  SloDecision decision;
  decision.attainable = false;
  for (uint32_t ways = floor; ways <= max_ways; ++ways) {
    const double service_rps = ServiceRps(ways);
    const double p95_ms = PredictedP95Ms(offered_rps, service_rps);
    decision.lc_ways = ways;
    decision.predicted_p95_ms = p95_ms;
    if (p95_ms <= target_ms &&
        offered_rps <= params_.max_utilization * service_rps) {
      decision.attainable = true;
      break;
    }
  }
  return decision;
}

size_t BanditSloGovernor::PickArm(const Context& context) {
  const int total = context_pulls_.count(context)
                        ? context_pulls_.at(context)
                        : 0;
  // Explore every arm once first, in declaration order.
  for (size_t i = 0; i < kArms.size(); ++i) {
    const auto it = arms_.find({context, i});
    if (it == arms_.end() || it->second.pulls == 0) return i;
  }
  size_t best = 0;
  double best_index = -1.0;
  for (size_t i = 0; i < kArms.size(); ++i) {
    const ArmStat& stat = arms_.at({context, i});
    const double mean = stat.reward_sum / stat.pulls;
    const double bonus =
        params_.bandit.exploration_c *
        std::sqrt(std::log(static_cast<double>(total)) / stat.pulls);
    const double index = mean + bonus;
    // Strict > keeps the earliest arm on ties — deterministic.
    if (index > best_index) {
      best_index = index;
      best = i;
    }
  }
  return best;
}

SloDecision BanditSloGovernor::Plan(double offered_rps, uint32_t max_ways,
                                    uint32_t current_ways,
                                    uint32_t pool_max_mba) {
  CHECK_GE(max_ways, 1u);
  SloDecision base = SmallestMeeting(offered_rps, max_ways);

  // Same shrink hysteresis the threshold loop applies to its base width.
  if (current_ways > 0 && base.lc_ways < current_ways) {
    const SloDecision guarded = SmallestMeeting(
        offered_rps * params_.shrink_load_margin, max_ways);
    if (guarded.lc_ways > base.lc_ways) {
      base.lc_ways = std::min(current_ways, guarded.lc_ways);
    }
  }

  const uint32_t floor = std::min(params_.lc_way_floor, max_ways);
  const Context context{LoadBucket(offered_rps), last_phase_};
  const size_t arm = PickArm(context);
  const int64_t delta = kArms[arm];
  const int64_t proposed = static_cast<int64_t>(base.lc_ways) + delta;
  const uint32_t ways = static_cast<uint32_t>(
      std::clamp<int64_t>(proposed, floor, max_ways));

  SloDecision decision;
  decision.lc_ways = ways;
  const double service_rps = ServiceRps(ways);
  decision.predicted_p95_ms = PredictedP95Ms(offered_rps, service_rps);
  decision.attainable =
      decision.predicted_p95_ms <= model_.slo_p95_ms / params_.headroom &&
      offered_rps <= params_.max_utilization * service_rps;

  decision.batch_mba_percent = pool_max_mba;
  const bool protect =
      !decision.attainable ||
      (params_.protect_rps_threshold > 0.0 &&
       offered_rps >= params_.protect_rps_threshold);
  if (protect) {
    decision.batch_mba_percent =
        std::min(pool_max_mba, params_.batch_mba_protect_percent);
  }

  pending_valid_ = true;
  pending_context_ = context;
  pending_arm_ = arm;
  pending_extra_frac_ =
      max_ways > floor
          ? static_cast<double>(ways - floor) / (max_ways - floor)
          : 0.0;
  return decision;
}

void BanditSloGovernor::ObserveOutcome(const SloOutcome& outcome) {
  last_phase_ = outcome.phase_index;
  if (!pending_valid_) return;
  pending_valid_ = false;
  const bool meets = !outcome.stalled &&
                     outcome.measured_p95_ms <= model_.slo_p95_ms;
  const double reward =
      meets ? 1.0 - params_.bandit.way_cost * pending_extra_frac_ : 0.0;
  ArmStat& stat = arms_[{pending_context_, pending_arm_}];
  stat.reward_sum += reward;
  ++stat.pulls;
  ++context_pulls_[pending_context_];
  ++rewards_observed_;
}

}  // namespace copart
