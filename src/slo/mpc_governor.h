// Model-predictive SLO governor: learns the p95-vs-(ways, offered-load)
// surface online from decision/outcome pairs (DESIGN.md §15).
//
// The analytic M/M/1 prediction the threshold governor trusts is built on
// PredictLcCapabilityIps, which reads the *baseline* workload descriptor —
// it is phase-blind and calibration-blind. This governor keeps the same
// grow-ways-first walk but multiplies every analytic p95 by a learned
// correction factor: an EWMA of measured/predicted ratios bucketed by
// (slice width × log-scale offered-load bucket), optimistically
// initialized at 1.0 (trust the model until evidence says otherwise) and
// falling back to the load-bucket marginal while a cell is cold. A
// stalled period (queued requests, zero completions) records the maximum
// correction — the strongest possible "the model was wrong" signal.
// When the load marginal says the analytic model is optimistic by more
// than mpc.protect_correction, the batch MBA cap engages predictively,
// before the static protect_rps_threshold would.
//
// Deterministic by construction: no randomness anywhere — decisions are a
// pure function of the constructor arguments and the ObserveOutcome
// history, so A/B tables replay bit-identically at any --threads value.
#ifndef COPART_SLO_MPC_GOVERNOR_H_
#define COPART_SLO_MPC_GOVERNOR_H_

#include <cstdint>
#include <map>
#include <utility>

#include "slo/slo_governor.h"

namespace copart {

class MpcSloGovernor : public SloGovernor {
 public:
  MpcSloGovernor(const SloParams& params, LcAppModel model);

  const char* name() const override { return "mpc"; }

  SloDecision Plan(double offered_rps, uint32_t max_ways,
                   uint32_t current_ways, uint32_t pool_max_mba) override;

  void ObserveOutcome(const SloOutcome& outcome) override;

  // Correction factor applied to the analytic p95 at (ways, offered_rps):
  // the (ways × load-bucket) cell when warm, else the load-bucket
  // marginal when warm, else the optimistic prior 1.0. Exposed for tests.
  double CorrectionFor(uint32_t ways, double offered_rps) const;

  // Number of outcomes absorbed so far. Exposed for tests.
  int outcomes_observed() const { return outcomes_observed_; }

 private:
  struct Cell {
    double correction = 1.0;
    int samples = 0;
  };

  int LoadBucket(double offered_rps) const;
  double CorrectedP95Ms(double offered_rps, uint32_t ways);
  SloDecision SmallestMeeting(double offered_rps, uint32_t max_ways);
  static void Absorb(Cell& cell, double ratio, double learning_rate);

  // (ways, load bucket) -> learned correction. std::map keeps iteration
  // (and therefore any future serialization) deterministic.
  std::map<std::pair<uint32_t, int>, Cell> cells_;
  // load bucket -> marginal correction across all widths (the cold-cell
  // fallback and the predictive-protection signal).
  std::map<int, Cell> load_marginal_;
  int outcomes_observed_ = 0;
};

}  // namespace copart

#endif  // COPART_SLO_MPC_GOVERNOR_H_
