// Threshold SLO governor: the hand-tuned M/M/1 loop shipped in PR 5,
// extracted bit-identically from the original core/slo_governor.{h,cc}
// (golden-enforced: serve_golden.json must not move by a byte).
//
// Given the offered load, the governor walks slice widths from the floor
// upward and picks the smallest for which the predicted p95 (M/M/1
// sojourn tail, serve/queue_model.h) meets the SLO with headroom — "grow
// ways first". If no permitted width attains the SLO it takes everything
// it may and additionally asks for the batch MBA ceiling to be capped
// ("then MBA") — the same protection that engages above
// protect_rps_threshold (DESIGN.md §9).
#ifndef COPART_SLO_THRESHOLD_GOVERNOR_H_
#define COPART_SLO_THRESHOLD_GOVERNOR_H_

#include <cstdint>

#include "slo/slo_governor.h"

namespace copart {

class ThresholdSloGovernor : public SloGovernor {
 public:
  ThresholdSloGovernor(const SloParams& params, LcAppModel model);

  const char* name() const override { return "threshold"; }

  SloDecision Plan(double offered_rps, uint32_t max_ways,
                   uint32_t current_ways, uint32_t pool_max_mba) override;

  // ObserveOutcome deliberately ignored: the threshold loop is stateless
  // across periods (beyond the hysteresis input the driver passes in).

 private:
  // The smallest width in [floor, max_ways] meeting the SLO for
  // `offered_rps`; attainable=false (and width max_ways) when none does.
  SloDecision SmallestMeeting(double offered_rps, uint32_t max_ways);
};

}  // namespace copart

#endif  // COPART_SLO_THRESHOLD_GOVERNOR_H_
