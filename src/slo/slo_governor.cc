#include "slo/slo_governor.h"

#include <utility>

#include "common/logging.h"
#include "slo/bandit_governor.h"
#include "slo/mpc_governor.h"
#include "slo/threshold_governor.h"

namespace copart {

SloGovernor::SloGovernor(const SloParams& params, LcAppModel model)
    : params_(params), model_(std::move(model)) {
  CHECK_GE(params_.lc_way_floor, 1u);
  CHECK_GT(params_.headroom, 0.0);
  CHECK_GT(params_.max_utilization, 0.0);
  CHECK_LE(params_.max_utilization, 1.0);
  CHECK_GE(params_.shrink_load_margin, 1.0);
  CHECK_GT(model_.slo_p95_ms, 0.0);
  CHECK_GT(model_.instructions_per_request, 0.0);
  CHECK(model_.capability_ips != nullptr);
}

double SloGovernor::ServiceRps(uint32_t ways) {
  if (ways >= service_rps_cache_.size()) {
    service_rps_cache_.resize(ways + 1, -1.0);
  }
  double& slot = service_rps_cache_[ways];
  if (slot < 0.0) {
    slot = model_.capability_ips(ways) / model_.instructions_per_request;
  }
  return slot;
}

std::unique_ptr<SloGovernor> MakeSloGovernor(const std::string& name,
                                             const SloParams& params,
                                             LcAppModel model) {
  if (name == "threshold") {
    return std::make_unique<ThresholdSloGovernor>(params, std::move(model));
  }
  if (name == "mpc") {
    return std::make_unique<MpcSloGovernor>(params, std::move(model));
  }
  if (name == "bandit") {
    return std::make_unique<BanditSloGovernor>(params, std::move(model));
  }
  LOG_FATAL << "unknown SLO governor: " << name;
  __builtin_unreachable();
}

const std::vector<std::string>& RegisteredSloGovernorNames() {
  static const std::vector<std::string> kNames{"threshold", "mpc", "bandit"};
  return kNames;
}

}  // namespace copart
