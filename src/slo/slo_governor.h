// Pluggable SLO governors: size a latency-critical CLOS from predicted
// tail latency (DESIGN.md §15).
//
// ResourceManager (core/resource_manager.h) is the *driver* of the SLO
// mode: it owns admission, the bottom-up carving of LC slices out of the
// resource pool, transactional actuation and telemetry. An SloGovernor
// owns the *sizing decision*: given the offered load and the permitted
// width range, pick the slice width and whether the batch MBA ceiling must
// be capped. The hand-tuned M/M/1 threshold loop shipped in PR 5 is one
// implementation (slo/threshold_governor.h, extracted bit-identically and
// golden-enforced); the online-learned rivals are others
// (slo/mpc_governor.h, slo/bandit_governor.h). The registry mirrors the
// PartitionPolicy pattern (core/partition_policy.h).
//
// Learned governors close the loop through ObserveOutcome: the serve
// harness reports each period's measured p95 back through
// ResourceManager::ReportLcOutcome, which pairs it with the decision that
// served the period (width, MBA cap, offered load — the same pair the
// AuditLog records under the "slo_outcome" trigger) and forwards it here.
// Governors must be deterministic: decisions are pure functions of the
// constructor arguments and the observation history — no wall clock, no
// unseeded randomness — so every scenario replays bit-identically at any
// --threads value.
#ifndef COPART_SLO_SLO_GOVERNOR_H_
#define COPART_SLO_SLO_GOVERNOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "slo/slo_params.h"

namespace copart {

// Model of one latency-critical app, supplied by the outer harness (a
// Heracles-style manager would fit it from profiling).
struct LcAppModel {
  // Tail-latency SLO: 95th percentile sojourn time, milliseconds.
  double slo_p95_ms = 1.0;
  // Mean instructions retired per request (converts IPS into requests/s).
  double instructions_per_request = 60000.0;
  // Predicted IPS capability of the app with `ways` LLC ways at the full
  // MBA level. Must be monotone non-decreasing in `ways` and deterministic
  // (a fixed function of the width): the governor memoizes it per width so
  // every Plan() after the first answers from the cache. Harnesses may
  // back it with the analytic CPI model (harness/serve.h) or with the
  // snapshot/rollback what-if evaluator (harness/whatif.h).
  std::function<double(uint32_t ways)> capability_ips;
  // Offered load (requests/s) the first plan — at registration, before any
  // SetLcOfferedLoad call — is sized for.
  double initial_offered_rps = 0.0;
};

struct SloDecision {
  uint32_t lc_ways = 0;
  // Requested batch-slice MBA ceiling (the pool maximum unless protection
  // engaged).
  uint32_t batch_mba_percent = 100;
  double predicted_p95_ms = 0.0;
  // False when even max_ways cannot meet the SLO with headroom.
  bool attainable = true;
};

// Measured outcome of one served control period, paired with the decision
// that served it — the learning signal for adaptive governors and the
// payload of the "slo_outcome" audit records.
struct SloOutcome {
  // Offered load the period was planned for (requests/s).
  double offered_rps = 0.0;
  // Actuated slice width and batch MBA ceiling the period ran under.
  uint32_t lc_ways = 0;
  uint32_t batch_mba_percent = 100;
  // p95 sojourn of the period's completions, ms (0 when none completed).
  double measured_p95_ms = 0.0;
  // True when the period completed nothing while requests were queued.
  bool stalled = false;
  // Workload phase id in effect during the period (bandit context; 0 for
  // phase-free workloads).
  size_t phase_index = 0;
};

class SloGovernor {
 public:
  virtual ~SloGovernor() = default;

  virtual const char* name() const = 0;

  // Plans the slice for `offered_rps` with widths in [floor, max_ways].
  // `current_ways` (0 = none yet) engages the shrink hysteresis;
  // `pool_max_mba` is the batch ceiling when protection is off. Every
  // governor must honor SloParams::lc_way_floor: the returned width is
  // never below min(lc_way_floor, max_ways).
  virtual SloDecision Plan(double offered_rps, uint32_t max_ways,
                           uint32_t current_ways, uint32_t pool_max_mba) = 0;

  // Feeds the measured outcome of the previously planned period. The
  // threshold governor ignores it; learned governors update their model.
  virtual void ObserveOutcome(const SloOutcome& /*outcome*/) {}

  const LcAppModel& model() const { return model_; }
  const SloParams& params() const { return params_; }

 protected:
  // Validates the shared knobs/model once; every governor runs the same
  // admission checks the original threshold loop did.
  SloGovernor(const SloParams& params, LcAppModel model);

  // Service rate (requests/s) at `ways`, memoized: capability_ips may be
  // an expensive model evaluation (e.g. a what-if machine solve) and
  // Plan probes the same few widths every period.
  double ServiceRps(uint32_t ways);

  SloParams params_;
  LcAppModel model_;

 private:
  // Per-width memo for ServiceRps; negative entries are unset.
  std::vector<double> service_rps_cache_;
};

// Factory: builds the governor named by `name` ("threshold", "mpc",
// "bandit"); CHECK-fails on an unknown name. `params.governor` is NOT
// consulted — the caller picks (ResourceManager passes params.slo.governor).
std::unique_ptr<SloGovernor> MakeSloGovernor(const std::string& name,
                                             const SloParams& params,
                                             LcAppModel model);

// Every registered governor name, in registration order — the chaos and
// conformance suites parameterize over this.
const std::vector<std::string>& RegisteredSloGovernorNames();

}  // namespace copart

#endif  // COPART_SLO_SLO_GOVERNOR_H_
