// Contextual-bandit SLO governor: UCB1 over way-delta arms (DESIGN.md §15).
//
// The analytic grow-ways-first walk supplies a base width; the bandit
// then chooses a delta from {0, +1, +2, -1} ways via a UCB1 index kept
// per context, where the context is (log-scale offered-load bucket ×
// workload phase id). Phase id arrives through ObserveOutcome — the
// serve harness reports the phase that actually ran — so a phase shift
// switches the bandit to a fresh arm table and it re-converges instead of
// trusting the phase-blind analytic model. Rewards are 1 for an
// SLO-meeting period minus a small cost per extra way held (so the
// narrowest sufficient delta wins) and 0 for a violating or stalled
// period.
//
// Deterministic by construction: no randomness — unplayed arms are
// explored in fixed declaration order, ties resolve to the earliest arm,
// and all state is a pure function of the Plan/ObserveOutcome history.
#ifndef COPART_SLO_BANDIT_GOVERNOR_H_
#define COPART_SLO_BANDIT_GOVERNOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

#include "slo/slo_governor.h"

namespace copart {

class BanditSloGovernor : public SloGovernor {
 public:
  BanditSloGovernor(const SloParams& params, LcAppModel model);

  const char* name() const override { return "bandit"; }

  SloDecision Plan(double offered_rps, uint32_t max_ways,
                   uint32_t current_ways, uint32_t pool_max_mba) override;

  void ObserveOutcome(const SloOutcome& outcome) override;

  // Total arm pulls resolved with a reward so far. Exposed for tests.
  int rewards_observed() const { return rewards_observed_; }

 private:
  // Way deltas relative to the analytic base width; declaration order is
  // the deterministic exploration/tie-break order.
  static constexpr std::array<int, 4> kArms = {0, 1, 2, -1};

  struct ArmStat {
    double reward_sum = 0.0;
    int pulls = 0;
  };
  // Context key: (load bucket, phase id).
  using Context = std::pair<int, size_t>;

  int LoadBucket(double offered_rps) const;
  SloDecision SmallestMeeting(double offered_rps, uint32_t max_ways);
  size_t PickArm(const Context& context);

  std::map<std::pair<Context, size_t>, ArmStat> arms_;
  std::map<Context, int> context_pulls_;

  // The plan that is currently serving, resolved by the next outcome.
  bool pending_valid_ = false;
  Context pending_context_{0, 0};
  size_t pending_arm_ = 0;
  double pending_extra_frac_ = 0.0;

  // Phase id of the most recently observed period (context for the next
  // Plan; workloads without phases always report 0).
  size_t last_phase_ = 0;
  int rewards_observed_ = 0;
};

}  // namespace copart

#endif  // COPART_SLO_BANDIT_GOVERNOR_H_
