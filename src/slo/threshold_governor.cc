#include "slo/threshold_governor.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "serve/queue_model.h"

namespace copart {

ThresholdSloGovernor::ThresholdSloGovernor(const SloParams& params,
                                           LcAppModel model)
    : SloGovernor(params, std::move(model)) {}

SloDecision ThresholdSloGovernor::SmallestMeeting(double offered_rps,
                                                  uint32_t max_ways) {
  const double target_ms = model_.slo_p95_ms / params_.headroom;
  const uint32_t floor = std::min(params_.lc_way_floor, max_ways);
  SloDecision decision;
  decision.attainable = false;
  for (uint32_t ways = floor; ways <= max_ways; ++ways) {
    const double service_rps = ServiceRps(ways);
    const double p95_ms = PredictedP95Ms(offered_rps, service_rps);
    decision.lc_ways = ways;
    decision.predicted_p95_ms = p95_ms;
    if (p95_ms <= target_ms &&
        offered_rps <= params_.max_utilization * service_rps) {
      decision.attainable = true;
      break;
    }
  }
  return decision;
}

SloDecision ThresholdSloGovernor::Plan(double offered_rps, uint32_t max_ways,
                                       uint32_t current_ways,
                                       uint32_t pool_max_mba) {
  CHECK_GE(max_ways, 1u);
  SloDecision decision = SmallestMeeting(offered_rps, max_ways);

  // Shrink hysteresis: only narrow the slice if the narrower width would
  // also survive a shrink_load_margin load bump, so a load hovering at a
  // way-quantization boundary cannot flap the allocation every period.
  if (current_ways > 0 && decision.lc_ways < current_ways) {
    const SloDecision guarded = SmallestMeeting(
        offered_rps * params_.shrink_load_margin, max_ways);
    if (guarded.lc_ways > decision.lc_ways) {
      decision.lc_ways = std::min(current_ways, guarded.lc_ways);
      // Report the prediction at the width actually kept.
      decision.predicted_p95_ms =
          PredictedP95Ms(offered_rps, ServiceRps(decision.lc_ways));
    }
  }

  decision.batch_mba_percent = pool_max_mba;
  const bool protect =
      !decision.attainable ||
      (params_.protect_rps_threshold > 0.0 &&
       offered_rps >= params_.protect_rps_threshold);
  if (protect) {
    decision.batch_mba_percent =
        std::min(pool_max_mba, params_.batch_mba_protect_percent);
  }
  return decision;
}

}  // namespace copart
