#include "slo/mpc_governor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "serve/queue_model.h"

namespace copart {

MpcSloGovernor::MpcSloGovernor(const SloParams& params, LcAppModel model)
    : SloGovernor(params, std::move(model)) {
  CHECK_GT(params_.mpc.learning_rate, 0.0);
  CHECK_LE(params_.mpc.learning_rate, 1.0);
  CHECK_GT(params_.mpc.min_correction, 0.0);
  CHECK_GE(params_.mpc.max_correction, params_.mpc.min_correction);
  CHECK_GE(params_.mpc.min_cell_samples, 1);
  CHECK_GT(params_.mpc.load_bucket_step, 1.0);
}

int MpcSloGovernor::LoadBucket(double offered_rps) const {
  if (!(offered_rps > 1.0)) return 0;
  return static_cast<int>(
      std::floor(std::log(offered_rps) /
                 std::log(params_.mpc.load_bucket_step)));
}

double MpcSloGovernor::CorrectionFor(uint32_t ways,
                                     double offered_rps) const {
  const int bucket = LoadBucket(offered_rps);
  const auto cell = cells_.find({ways, bucket});
  if (cell != cells_.end() &&
      cell->second.samples >= params_.mpc.min_cell_samples) {
    return cell->second.correction;
  }
  const auto marginal = load_marginal_.find(bucket);
  if (marginal != load_marginal_.end() &&
      marginal->second.samples >= params_.mpc.min_cell_samples) {
    return marginal->second.correction;
  }
  return 1.0;  // Optimistic prior: trust the analytic model until taught.
}

double MpcSloGovernor::CorrectedP95Ms(double offered_rps, uint32_t ways) {
  const double analytic = PredictedP95Ms(offered_rps, ServiceRps(ways));
  if (!std::isfinite(analytic)) return analytic;
  return analytic * CorrectionFor(ways, offered_rps);
}

SloDecision MpcSloGovernor::SmallestMeeting(double offered_rps,
                                            uint32_t max_ways) {
  const double target_ms = model_.slo_p95_ms / params_.headroom;
  const uint32_t floor = std::min(params_.lc_way_floor, max_ways);
  SloDecision decision;
  decision.attainable = false;
  for (uint32_t ways = floor; ways <= max_ways; ++ways) {
    const double p95_ms = CorrectedP95Ms(offered_rps, ways);
    decision.lc_ways = ways;
    decision.predicted_p95_ms = p95_ms;
    if (p95_ms <= target_ms &&
        offered_rps <= params_.max_utilization * ServiceRps(ways)) {
      decision.attainable = true;
      break;
    }
  }
  return decision;
}

SloDecision MpcSloGovernor::Plan(double offered_rps, uint32_t max_ways,
                                 uint32_t current_ways,
                                 uint32_t pool_max_mba) {
  CHECK_GE(max_ways, 1u);
  SloDecision decision = SmallestMeeting(offered_rps, max_ways);

  // Same shrink hysteresis as the threshold loop, evaluated on the
  // corrected surface.
  if (current_ways > 0 && decision.lc_ways < current_ways) {
    const SloDecision guarded = SmallestMeeting(
        offered_rps * params_.shrink_load_margin, max_ways);
    if (guarded.lc_ways > decision.lc_ways) {
      decision.lc_ways = std::min(current_ways, guarded.lc_ways);
      decision.predicted_p95_ms =
          CorrectedP95Ms(offered_rps, decision.lc_ways);
    }
  }

  decision.batch_mba_percent = pool_max_mba;
  bool protect = !decision.attainable ||
                 (params_.protect_rps_threshold > 0.0 &&
                  offered_rps >= params_.protect_rps_threshold);
  // Predictive protection: the learned marginal says the analytic model
  // under-predicts tail latency at this load level — shield the LC app's
  // memory traffic before the queue proves it again.
  if (!protect && params_.mpc.protect_correction > 0.0) {
    const auto marginal = load_marginal_.find(LoadBucket(offered_rps));
    if (marginal != load_marginal_.end() &&
        marginal->second.samples >= params_.mpc.min_cell_samples &&
        marginal->second.correction >= params_.mpc.protect_correction) {
      protect = true;
    }
  }
  if (protect) {
    decision.batch_mba_percent =
        std::min(pool_max_mba, params_.batch_mba_protect_percent);
  }
  return decision;
}

void MpcSloGovernor::Absorb(Cell& cell, double ratio, double learning_rate) {
  if (cell.samples == 0) {
    cell.correction = ratio;
  } else {
    cell.correction =
        (1.0 - learning_rate) * cell.correction + learning_rate * ratio;
  }
  ++cell.samples;
}

void MpcSloGovernor::ObserveOutcome(const SloOutcome& outcome) {
  if (outcome.lc_ways == 0) return;
  const double analytic =
      PredictedP95Ms(outcome.offered_rps, ServiceRps(outcome.lc_ways));
  double ratio;
  if (outcome.stalled) {
    // Queued requests, zero completions: the strongest evidence the
    // analytic model over-estimated capability at this operating point.
    ratio = params_.mpc.max_correction;
  } else if (std::isfinite(analytic) && analytic > 0.0 &&
             outcome.measured_p95_ms > 0.0) {
    ratio = std::clamp(outcome.measured_p95_ms / analytic,
                       params_.mpc.min_correction,
                       params_.mpc.max_correction);
  } else {
    // The analytic model already predicted saturation (+inf) or the
    // period completed nothing without queueing: no ratio to learn from.
    return;
  }
  const int bucket = LoadBucket(outcome.offered_rps);
  Absorb(cells_[{outcome.lc_ways, bucket}], ratio,
         params_.mpc.learning_rate);
  Absorb(load_marginal_[bucket], ratio, params_.mpc.learning_rate);
  ++outcomes_observed_;
}

}  // namespace copart
