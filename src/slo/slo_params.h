// Parameters of the SLO-aware serving mode and its pluggable governors
// (DESIGN.md §9, §15). Lives in src/slo so the governor implementations —
// which sit below core — can share the knobs with the ResourceManager
// driver; core/copart_params.h re-exports SloParams as part of
// ResourceManagerParams.
#ifndef COPART_SLO_SLO_PARAMS_H_
#define COPART_SLO_SLO_PARAMS_H_

#include <cstdint>
#include <string>

namespace copart {

// Model-predictive governor (slo/mpc_governor.h): learns multiplicative
// corrections to the analytic M/M/1 p95 prediction from decision/outcome
// pairs, bucketed by (slice width, offered-load bucket).
struct SloMpcParams {
  // EWMA weight of a fresh measured/predicted p95 ratio.
  double learning_rate = 0.3;
  // Corrections are clamped into [min_correction, max_correction]; a
  // stalled epoch (completions 0, queue > 0) records max_correction. The
  // ceiling is deliberately high: during a queue-drain transient the
  // steady-state model predicts microseconds while the backlog serves in
  // milliseconds, and the correction must span that gap for the governor
  // to buy drain bandwidth (extra ways) instead of re-trusting the model.
  double min_correction = 0.25;
  double max_correction = 64.0;
  // Cells answer the optimistic prior (correction 1.0 — trust the analytic
  // model) until they have accumulated this many outcomes; below it the
  // load-bucket marginal stands in when IT has enough samples.
  int min_cell_samples = 2;
  // Log-scale offered-load bucketing: bucket = floor(log(rps)/log(step)).
  double load_bucket_step = 1.25;
  // Predictive MBA protection: when the learned load-marginal correction
  // exceeds this factor (the analytic model is measurably optimistic at
  // the current load), the batch MBA cap engages even below the static
  // protect_rps_threshold. <= 0 disables.
  double protect_correction = 1.5;
};

// Contextual-bandit governor (slo/bandit_governor.h): UCB1 over way-delta
// arms applied to the analytic base plan, with context = offered-load
// bucket x workload phase id.
struct SloBanditParams {
  // Exploration constant of the UCB index (mean + c*sqrt(ln N / n)).
  double exploration_c = 0.5;
  // Reward shaping: an SLO-meeting epoch is worth 1 minus this cost times
  // the fraction of permitted extra ways held, so the bandit prefers the
  // narrowest delta that still meets the SLO.
  double way_cost = 0.05;
  // Same log-scale load bucketing as the MPC governor.
  double load_bucket_step = 1.25;
};

// SLO-aware serving mode (paper §6.3, DESIGN.md §9). When enabled, the
// manager carves a latency-critical slice off its resource pool *before*
// running the CoPart fairness allocation: each registered LC app
// (ResourceManager::SetLatencyCriticalApp) gets the smallest CLOS for
// which its predicted p95 — an M/M/1 sojourn tail at the app's modelled
// IPS capability (serve/queue_model.h) — meets the SLO with headroom,
// and the batch apps are matched over the remaining ways.
struct SloParams {
  bool enabled = false;

  // Which SloGovernor plans the LC slices (slo/slo_governor.h):
  // "threshold" (default; the hand-tuned M/M/1 loop), "mpc" (online
  // learned p95 surface), or "bandit" (contextual UCB over way deltas).
  std::string governor = "threshold";

  // Minimum ways an LC CLOS may ever hold. The governor never plans below
  // it, and the chaos property suite pins that no fault schedule can leave
  // the actuated LC mask narrower — for EVERY registered governor.
  uint32_t lc_way_floor = 1;

  // The LC slice is sized so predicted p95 <= slo_p95_ms / headroom.
  double headroom = 1.25;

  // Capacity guard: the slice must also keep offered/service utilization
  // at or below this. Near saturation the M/M/1 tail is hyper-sensitive
  // to capability-model error (a few percent of optimism turns a "meets
  // the SLO" plan into an overloaded queue), so the p95 test alone is not
  // a safe provisioning criterion.
  double max_utilization = 0.9;

  // Shrink hysteresis: a narrower slice is adopted only if it still meets
  // the target with the offered load inflated by this factor, so way
  // quantization noise cannot flap the slice every period.
  double shrink_load_margin = 1.2;

  // Offered load (requests/s) at or above which the batch slice's MBA
  // ceiling is capped to batch_mba_protect_percent, shielding the LC
  // app's memory traffic during load peaks (Fig. 15's burst response);
  // <= 0 disables. The cap also engages whenever the SLO is predicted
  // unattainable at every permitted slice width.
  double protect_rps_threshold = 0.0;
  uint32_t batch_mba_protect_percent = 50;

  // Learned-governor knobs (unused by "threshold").
  SloMpcParams mpc;
  SloBanditParams bandit;
};

}  // namespace copart

#endif  // COPART_SLO_SLO_PARAMS_H_
