#include "obs/obs.h"

#include <fstream>

namespace copart {

Observability::Observability(const ObservabilityOptions& options)
    : tracer(options.tracer), audit(options.audit_capacity) {}

void Observability::set_enabled(bool enabled) {
  tracer.set_enabled(enabled);
  audit.set_enabled(enabled);
}

Status Observability::ExportAll(const std::string& prefix) {
  Status status = tracer.ExportChromeTrace(prefix + ".trace.json");
  if (!status.ok()) {
    return status;
  }
  status = audit.ExportJson(prefix + ".audit.json");
  if (!status.ok()) {
    return status;
  }
  const std::string path = prefix + ".metrics.json";
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return UnavailableError("cannot open metrics output path: " + path);
  }
  file << metrics.DumpJson(/*deterministic_only=*/false);
  file.flush();
  if (!file) {
    return UnavailableError("failed writing metrics output: " + path);
  }
  return Status::Ok();
}

void ExportFaultInjectorMetrics(const FaultInjector& injector,
                                MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  metrics->GetCounter("copart.fault.total_queries")
      ->Increment(injector.total_queries());
  metrics->GetCounter("copart.fault.total_failures")
      ->Increment(injector.total_failures());
  for (const std::string& point : injector.PointNames()) {
    metrics->GetCounter("copart.fault." + point + ".queries")
        ->Increment(injector.PointQueries(point));
    metrics->GetCounter("copart.fault." + point + ".failures")
        ->Increment(injector.PointFailures(point));
  }
}

void ExportSweepStatsMetrics(const SweepStats& stats, const std::string& prefix,
                             MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  metrics->GetCounter(prefix + ".cells")->Increment(stats.cells_completed);
  metrics->GetGauge(prefix + ".threads", /*deterministic=*/false)
      ->Set(stats.threads);
  metrics->GetGauge(prefix + ".wall_sec", /*deterministic=*/false)
      ->Set(stats.wall_sec);
  metrics->GetGauge(prefix + ".cpu_sec", /*deterministic=*/false)
      ->Set(stats.cpu_sec);
  metrics->GetGauge(prefix + ".utilization", /*deterministic=*/false)
      ->Set(stats.utilization());
}

}  // namespace copart
