#include "obs/tracer.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace copart {
namespace {

uint64_t NextTracerId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// One cache entry per (thread, tracer) pair the thread has pushed through.
// Entries for destroyed tracers are never matched again (ids are globally
// unique), so their stale ring pointers are harmless.
struct ThreadRingCache {
  uint64_t tracer_id;
  TraceRing* ring;
  uint32_t tid;  // Registration index of the ring, fixed at creation.
};

thread_local std::vector<ThreadRingCache> t_ring_cache;

// Names are static C strings under our control, but escape defensively so
// a stray quote or backslash can never produce invalid JSON.
void AppendEscaped(std::ostringstream& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out << buffer;
    } else {
      out << c;
    }
  }
}

void AppendEvent(std::ostringstream& out, const TraceEvent& event) {
  out << "{\"name\": \"";
  AppendEscaped(out, event.name);
  out << "\", \"cat\": \"";
  AppendEscaped(out, event.category);
  out << "\", \"ph\": \"" << event.phase << "\", \"ts\": " << event.ts_us;
  if (event.phase == 'X') {
    out << ", \"dur\": " << event.dur_us;
  }
  out << ", \"pid\": 1, \"tid\": " << event.tid;
  if (event.phase == 'i') {
    out << ", \"s\": \"g\"";
  }
  if (event.arg1_name != nullptr || event.arg2_name != nullptr) {
    out << ", \"args\": {";
    if (event.arg1_name != nullptr) {
      out << "\"";
      AppendEscaped(out, event.arg1_name);
      out << "\": " << event.arg1;
    }
    if (event.arg2_name != nullptr) {
      out << (event.arg1_name != nullptr ? ", " : "") << "\"";
      AppendEscaped(out, event.arg2_name);
      out << "\": " << event.arg2;
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

Tracer::Tracer(const TracerOptions& options)
    : options_(options), enabled_(options.enabled), tracer_id_(NextTracerId()) {
  CHECK_GE(options_.ring_capacity, 1u);
}

TraceRing* Tracer::RingForThisThread() {
  // Registration takes the lock once per (thread, tracer) pair; every later
  // Push resolves through the thread-local cache with no synchronization.
  std::lock_guard<std::mutex> lock(mutex_);
  const uint32_t tid = static_cast<uint32_t>(rings_.size());
  rings_.push_back(std::make_unique<TraceRing>(options_.ring_capacity));
  TraceRing* ring = rings_.back().get();
  t_ring_cache.push_back({tracer_id_, ring, tid});
  return ring;
}

void Tracer::Push(TraceEvent event) {
  if (!enabled()) {
    return;
  }
  for (const ThreadRingCache& cached : t_ring_cache) {
    if (cached.tracer_id == tracer_id_) {
      event.tid = cached.tid;
      cached.ring->Push(event);
      return;
    }
  }
  TraceRing* ring = RingForThisThread();
  event.tid = t_ring_cache.back().tid;
  ring->Push(event);
}

void Tracer::DrainRings() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < rings_.size(); ++i) {
    std::vector<TraceEvent> batch;
    rings_[i]->Drain(batch);
    for (TraceEvent& event : batch) {
      event.tid = static_cast<uint32_t>(i);
      if (archive_.size() >= options_.max_archive_events) {
        ++archive_dropped_;
      } else {
        archive_.push_back(event);
      }
    }
  }
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = archive_.size();
  for (const auto& ring : rings_) {
    count += ring->size();
  }
  return count;
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = archive_dropped_;
  for (const auto& ring : rings_) {
    dropped += ring->dropped();
  }
  return dropped;
}

std::string Tracer::ChromeTraceJson() {
  DrainRings();
  std::vector<TraceEvent> events;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events = archive_;
    dropped = archive_dropped_;
    for (const auto& ring : rings_) {
      dropped += ring->dropped();
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.seq < b.seq;
                   });

  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  // Metadata first so viewers label the process before any real event.
  out << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"tid\": 0, \"args\": {\"name\": \"copart\"}}";
  for (const TraceEvent& event : events) {
    out << ",\n";
    AppendEvent(out, event);
  }
  if (dropped > 0) {
    const uint64_t last_ts = events.empty() ? 0 : events.back().ts_us;
    out << ",\n{\"name\": \"trace_overflow\", \"cat\": \"copart\", "
           "\"ph\": \"i\", \"ts\": "
        << last_ts << ", \"pid\": 1, \"tid\": 0, \"s\": \"g\", "
        << "\"args\": {\"dropped\": " << dropped << "}}";
  }
  out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out.str();
}

Status Tracer::ExportChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return UnavailableError("cannot open trace output path: " + path);
  }
  file << json;
  file.flush();
  if (!file) {
    return UnavailableError("failed writing trace output: " + path);
  }
  return Status::Ok();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_) {
    std::vector<TraceEvent> discard;
    ring->Drain(discard);
  }
  archive_.clear();
  archive_dropped_ = 0;
}

void TraceTick::Instant(const char* name, const char* arg_name, int64_t arg) {
  if (!active()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.ts_us = ts_us_;
  event.arg1_name = arg_name;
  event.arg1 = arg;
  tracer_->Push(event);
}

void TraceTick::CounterSample(const char* name, int64_t value) {
  if (!active()) {
    return;
  }
  TraceEvent event;
  event.name = name;
  event.phase = 'C';
  event.ts_us = ts_us_;
  event.arg1_name = "value";
  event.arg1 = value;
  tracer_->Push(event);
}

}  // namespace copart
