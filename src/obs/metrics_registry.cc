#include "obs/metrics_registry.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace copart {
namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_edges)
    : upper_edges_(std::move(upper_edges)),
      counts_(upper_edges_.size() + 1, 0) {
  CHECK(!upper_edges_.empty());
  for (size_t i = 1; i < upper_edges_.size(); ++i) {
    CHECK(upper_edges_[i - 1] < upper_edges_[i])
        << "histogram edges must be strictly increasing";
  }
}

size_t Histogram::BucketFor(double value) const {
  for (size_t i = 0; i < upper_edges_.size(); ++i) {
    if (value <= upper_edges_[i]) {
      return i;
    }
  }
  return upper_edges_.size();  // Overflow bucket.
}

void Histogram::Observe(double value) {
  ++counts_[BucketFor(value)];
  ++count_;
  sum_ += value;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     bool deterministic) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    CHECK(it->second.counter != nullptr)
        << "metric '" << std::string(name) << "' is not a counter";
    return it->second.counter.get();
  }
  Entry entry;
  entry.deterministic = deterministic;
  entry.counter = std::make_unique<Counter>();
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, bool deterministic) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    CHECK(it->second.gauge != nullptr)
        << "metric '" << std::string(name) << "' is not a gauge";
    return it->second.gauge.get();
  }
  Entry entry;
  entry.deterministic = deterministic;
  entry.gauge = std::make_unique<Gauge>();
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> upper_edges,
                                         bool deterministic) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    Histogram* histogram = it->second.histogram.get();
    CHECK(histogram != nullptr)
        << "metric '" << std::string(name) << "' is not a histogram";
    CHECK(histogram->upper_edges() ==
          std::vector<double>(upper_edges.begin(), upper_edges.end()))
        << "histogram '" << std::string(name) << "' re-registered with "
        << "different edges";
    return histogram;
  }
  Entry entry;
  entry.deterministic = deterministic;
  entry.histogram = std::make_unique<Histogram>(
      std::vector<double>(upper_edges.begin(), upper_edges.end()));
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second.histogram.get();
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, entry] : other.metrics_) {
    if (entry.counter != nullptr) {
      GetCounter(name, entry.deterministic)
          ->Increment(entry.counter->value());
    } else if (entry.gauge != nullptr) {
      Gauge* gauge = GetGauge(name, entry.deterministic);
      gauge->Set(gauge->value() + entry.gauge->value());
    } else {
      Histogram* histogram = GetHistogram(name, entry.histogram->upper_edges(),
                                          entry.deterministic);
      for (size_t i = 0; i < entry.histogram->counts_.size(); ++i) {
        histogram->counts_[i] += entry.histogram->counts_[i];
      }
      histogram->count_ += entry.histogram->count_;
      histogram->sum_ += entry.histogram->sum_;
    }
  }
}

std::string MetricsRegistry::DumpText(bool deterministic_only) const {
  std::ostringstream out;
  for (const auto& [name, entry] : metrics_) {
    if (deterministic_only && !entry.deterministic) {
      continue;
    }
    if (entry.counter != nullptr) {
      out << "counter " << name << " = " << entry.counter->value() << "\n";
    } else if (entry.gauge != nullptr) {
      out << "gauge " << name << " = " << FormatDouble(entry.gauge->value())
          << "\n";
    } else {
      const Histogram& histogram = *entry.histogram;
      out << "histogram " << name << " count=" << histogram.count()
          << " sum=" << FormatDouble(histogram.sum()) << " buckets=[";
      for (size_t i = 0; i < histogram.counts_.size(); ++i) {
        out << (i == 0 ? "" : ", ") << histogram.counts_[i];
      }
      out << "]\n";
    }
  }
  return out.str();
}

std::string MetricsRegistry::DumpJson(bool deterministic_only) const {
  // Three passes (one per kind) keep each JSON section sorted by name
  // without an intermediate index.
  std::ostringstream out;
  out << "{\n";
  const char* section_separator = "";
  for (const char* kind : {"counters", "gauges", "histograms"}) {
    out << section_separator << "  \"" << kind << "\": {";
    section_separator = ",\n";
    const char* separator = "\n";
    for (const auto& [name, entry] : metrics_) {
      if (deterministic_only && !entry.deterministic) {
        continue;
      }
      if (kind[0] == 'c' && entry.counter != nullptr) {
        out << separator << "    \"" << name
            << "\": " << entry.counter->value();
      } else if (kind[0] == 'g' && entry.gauge != nullptr) {
        out << separator << "    \"" << name
            << "\": " << FormatDouble(entry.gauge->value());
      } else if (kind[0] == 'h' && entry.histogram != nullptr) {
        const Histogram& histogram = *entry.histogram;
        out << separator << "    \"" << name << "\": {\"edges\": [";
        for (size_t i = 0; i < histogram.upper_edges().size(); ++i) {
          out << (i == 0 ? "" : ", ")
              << FormatDouble(histogram.upper_edges()[i]);
        }
        out << "], \"counts\": [";
        for (size_t i = 0; i < histogram.counts_.size(); ++i) {
          out << (i == 0 ? "" : ", ") << histogram.counts_[i];
        }
        out << "], \"count\": " << histogram.count()
            << ", \"sum\": " << FormatDouble(histogram.sum()) << "}";
      } else {
        continue;
      }
      separator = ",\n";
    }
    // An empty section renders as {}; a populated one closes on a new line.
    out << (separator[0] == ',' ? "\n  }" : "}");
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace copart
