// One queryable surface for every counter the system used to scatter across
// ad-hoc telemetry structs: the resource manager's hardening counters, the
// fault injector's per-point hit counts, PMC/resctrl substrate tallies, and
// the sweep engine's cell statistics.
//
// Three metric kinds:
//   Counter   — monotonically increasing uint64 (merged by sum).
//   Gauge     — last-written double (merged by sum; sweep timings become
//               totals across cells, which is the useful aggregate).
//   Histogram — fixed upper-edge buckets chosen at registration. A value v
//               lands in the first bucket with v <= upper_edge; values above
//               the last edge land in the overflow bucket. Merged by
//               element-wise sum (edges must match).
//
// Determinism contract: every metric declares at registration whether its
// value is a pure function of the simulation seed (`deterministic`, the
// default) or measures the host (wall/cpu time, utilization). Dumps sort by
// name and format doubles with %.17g, so a deterministic-only dump is
// byte-identical across thread counts and runs — the property
// harness_determinism_test pins. Nondeterministic metrics are still
// exported by the full dump for humans; they are simply excluded from the
// byte-compared surface.
//
// Registration (GetCounter etc.) allocates and takes a map lookup — do it
// once and hold the returned pointer, which stays valid for the registry's
// lifetime. The update methods (Increment/Set/Observe) are allocation-free.
// The registry is not thread-safe: sweeps give each cell its own registry
// and Merge() them serially in index order (the same discipline the
// parallel engine imposes on every reduction).
#ifndef COPART_OBS_METRICS_REGISTRY_H_
#define COPART_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace copart {

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
};

class Histogram {
 public:
  // `upper_edges` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_edges);

  void Observe(double value);

  // Index of the bucket Observe(value) would land in; bucket_count() (the
  // overflow bucket) for values above the last edge.
  size_t BucketFor(double value) const;

  size_t bucket_count() const { return upper_edges_.size(); }
  const std::vector<double>& upper_edges() const { return upper_edges_; }
  uint64_t bucket(size_t i) const { return counts_[i]; }
  uint64_t overflow() const { return counts_.back(); }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  friend class MetricsRegistry;
  std::vector<double> upper_edges_;
  std::vector<uint64_t> counts_;  // upper_edges_.size() buckets + overflow.
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. LOG_FATALs if `name` is already registered as a
  // different kind (or, for histograms, with different edges).
  Counter* GetCounter(std::string_view name, bool deterministic = true);
  Gauge* GetGauge(std::string_view name, bool deterministic = true);
  Histogram* GetHistogram(std::string_view name,
                          std::span<const double> upper_edges,
                          bool deterministic = true);

  // Folds `other` into this registry: counters and histogram buckets add,
  // gauges add (turning per-cell timings into sweep totals). Metrics absent
  // here are created with the other registry's kind and determinism flag.
  void Merge(const MetricsRegistry& other);

  size_t size() const { return metrics_.size(); }

  // "counter copart.rollbacks = 3" lines, sorted by name.
  std::string DumpText(bool deterministic_only = false) const;
  // {"counters": {...}, "gauges": {...}, "histograms": {...}} with keys
  // sorted, doubles as %.17g.
  std::string DumpJson(bool deterministic_only = false) const;

 private:
  struct Entry {
    bool deterministic = true;
    // Exactly one is non-null.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::map<std::string, Entry, std::less<>> metrics_;
};

}  // namespace copart

#endif  // COPART_OBS_METRICS_REGISTRY_H_
