// Controller decision audit log: one structured record per resource
// allocation change (and per failure, phase transition, or quarantine
// flip), answering "why does app X hold this partition?" after the fact.
//
// Records are appended by the resource manager as decisions are actuated
// and exported as one JSON object per line (JSONL inside a top-level
// array), so diffs and greps stay line-oriented. The log is bounded:
// appends beyond `capacity` are dropped and counted, mirroring the trace
// ring's drop-new policy.
//
// Determinism: every field is a pure function of the simulation seed —
// epochs, simulated time, masks, and static-string names only; no wall
// clock, no pointers. The golden test (tests/golden/audit_golden.json)
// byte-compares an exported log, and the determinism property test pins
// byte-identical exports across --threads values.
//
// Layering: this is an obs-layer type, below src/core. Phase, class, and
// trigger names arrive as `const char*` static strings supplied by the
// caller (core's name tables), keeping the dependency arrow core -> obs.
#ifndef COPART_OBS_AUDIT_LOG_H_
#define COPART_OBS_AUDIT_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace copart {

// What a record documents.
enum class AuditKind {
  kAllocation,        // A CLOS's ways/MBA changed (or was first assigned).
  kActuationFailure,  // A transactional apply failed (maybe rolled back).
  kPhaseTransition,   // Manager moved between profiling/exploration/idle/...
  kQuarantineChange,  // An app's counters entered or left quarantine.
  kMigration,         // Fleet live-migration step (plan/drain/admit/verify/
                      // rollback); app_index = source node, clos = target
                      // node, app_id = fleet job id (DESIGN.md §13).
  kNodeFault,         // Fleet node fault-domain event (crash/slow/blackout/
                      // reboot); app_index = node index.
  kGovernorOutcome,   // Measured outcome of one SLO-governed period fed
                      // back to the governor (trigger "slo_outcome");
                      // new_mask = slice ways, new_mba = batch MBA cap,
                      // detail = "meets"/"violation"/"stalled".
};

const char* AuditKindName(AuditKind kind);

// String fields must point at static-storage strings (core's name tables
// or literals); records are PODs copied into the log.
struct AuditRecord {
  AuditKind kind = AuditKind::kAllocation;
  uint64_t epoch = 0;      // Controller tick index.
  double time_sec = 0.0;   // Simulated time.
  const char* phase = "";  // Manager phase at decision time.
  // Why the change happened: "adaptation_start", "profiling_probe",
  // "exploration_match", "exploration_neighbor", "idle_restore_best",
  // "degraded_fair_share", "actuation_retry", ...
  const char* trigger = "";

  // Subject. app_index < 0 means a system-wide record (phase transitions).
  int32_t app_index = -1;
  int32_t app_id = -1;
  int32_t clos = -1;
  const char* llc_class = "";  // Classification driving the decision.

  // Allocation delta (kAllocation / kActuationFailure).
  uint64_t old_mask = 0;
  uint64_t new_mask = 0;
  int32_t old_mba = 0;
  int32_t new_mba = 0;

  // Hardening annotations.
  bool rollback = false;     // Failure was rolled back to the snapshot.
  bool degraded = false;     // Decision taken while in degraded mode.
  bool quarantined = false;  // Subject app's counters are quarantined.
  int32_t failure_streak = 0;

  const char* detail = "";  // Free-form static annotation.
};

class AuditLog {
 public:
  explicit AuditLog(size_t capacity = 1 << 16);

  AuditLog(const AuditLog&) = delete;
  AuditLog& operator=(const AuditLog&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Appends (copies) one record; drops and counts when at capacity or
  // disabled (disabled appends are not counted as drops).
  void Append(const AuditRecord& record);

  size_t size() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }
  const std::vector<AuditRecord>& records() const { return records_; }

  // Records matching `kind`, in append order.
  std::vector<AuditRecord> Filter(AuditKind kind) const;

  // A JSON array with one record object per line. A non-zero drop count
  // appends a final {"audit_overflow": N} marker line.
  std::string ToJson() const;
  Status ExportJson(const std::string& path) const;

  void Clear();

 private:
  size_t capacity_;
  bool enabled_ = true;
  std::vector<AuditRecord> records_;
  uint64_t dropped_ = 0;
};

}  // namespace copart

#endif  // COPART_OBS_AUDIT_LOG_H_
