// Structured tracing with Chrome trace-event JSON export.
//
// The Tracer owns one lock-free TraceRing per producer thread plus an
// archive the rings are drained into at epoch boundaries (DrainRings —
// amortized allocation off the hot path; Push itself never allocates).
// ExportChromeTrace emits the merged, (ts, tid, seq)-sorted events as a
// `{"traceEvents": [...]}` document that chrome://tracing and Perfetto
// open directly. A non-zero drop count (ring overflow or a full archive)
// becomes an explicit `trace_overflow` instant event at the end of the
// trace, so truncation is always visible in the UI.
//
// Determinism: timestamps are virtual microseconds. An instrumented tick
// opens a TraceTick at the simulated time and each span advances the
// tick-local cursor by its declared cost units (1 unit = 1 virtual us, at
// least 1 per span). Durations therefore measure deterministic work counts
// (apps sampled, schemata entries applied) rather than host latency, and a
// trace is byte-identical across runs, machines, and --threads values for
// the same seed. Wall-clock profiling stays where it already lives (the
// Fig. 16 exploration timer and the sweep stats), exported as
// nondeterministic metrics, never into the trace.
//
// Cost when idle: a disabled tracer (set_enabled(false), or a null Tracer*
// via obs.h's gates) costs one branch per instrumented site; the
// compile-time switch COPART_OBS_DISABLED (obs.h) removes even that.
#ifndef COPART_OBS_TRACER_H_
#define COPART_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_ring.h"

namespace copart {

struct TracerOptions {
  // Capacity of each per-thread ring. One control period emits well under
  // 32 events, so the default tolerates >500 periods between drains.
  size_t ring_capacity = 1 << 14;
  // Archive ceiling: once this many events have been drained, further ones
  // are dropped (and counted). Bounds memory on very long runs.
  size_t max_archive_events = 1 << 20;
  bool enabled = true;
};

class Tracer {
 public:
  explicit Tracer(const TracerOptions& options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Pushes one event into the calling thread's ring (registered on first
  // use). The event's tid is overwritten with the ring's id. No-op when
  // disabled.
  void Push(TraceEvent event);

  // Moves every ring's published events into the archive. Called at epoch
  // boundaries by instrumented loops and implicitly by the exporters.
  // Not safe concurrently with producers pushing.
  void DrainRings();

  // Events archived + still in rings; drops across rings and the archive.
  size_t event_count() const;
  uint64_t dropped_events() const;

  // The merged, sorted trace. Non-destructive (drains rings into the
  // archive, which is kept).
  std::string ChromeTraceJson();
  Status ExportChromeTrace(const std::string& path);

  void Clear();

 private:
  TraceRing* RingForThisThread();

  TracerOptions options_;
  std::atomic<bool> enabled_{true};
  const uint64_t tracer_id_;  // Globally unique; keys the thread-local cache.

  mutable std::mutex mutex_;  // Guards rings_ registration and the archive.
  std::vector<std::unique_ptr<TraceRing>> rings_;
  std::vector<TraceEvent> archive_;
  uint64_t archive_dropped_ = 0;
};

// Deterministic intra-tick clock: spans and instants emitted through a
// TraceTick share the tick's base timestamp (simulated microseconds) and
// advance a virtual cursor by their declared cost. Cheap enough to
// construct unconditionally; every method no-ops when `tracer` is null or
// disabled.
class TraceTick {
 public:
  TraceTick(Tracer* tracer, uint64_t base_ts_us)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        ts_us_(base_ts_us) {}

  bool active() const { return tracer_ != nullptr; }

  // RAII span: opens at the tick's current cursor, closes (and publishes)
  // at destruction with dur = max(cost units, 1).
  class Span {
   public:
    Span(TraceTick* tick, const char* name)
        : tick_(tick != nullptr && tick->active() ? tick : nullptr),
          name_(name) {
      if (tick_ != nullptr) {
        start_us_ = tick_->ts_us_;
      }
    }
    ~Span() {
      if (tick_ == nullptr) {
        return;
      }
      TraceEvent event;
      event.name = name_;
      event.phase = 'X';
      event.ts_us = start_us_;
      event.dur_us = cost_ > 0 ? cost_ : 1;
      event.arg1_name = arg1_name_;
      event.arg1 = arg1_;
      event.arg2_name = arg2_name_;
      event.arg2 = arg2_;
      tick_->ts_us_ = start_us_ + event.dur_us;
      tick_->tracer_->Push(event);
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    // 1 unit = 1 virtual microsecond (e.g. apps sampled, entries applied).
    void set_cost(uint64_t units) { cost_ = units; }
    void set_arg1(const char* name, int64_t value) {
      arg1_name_ = name;
      arg1_ = value;
    }
    void set_arg2(const char* name, int64_t value) {
      arg2_name_ = name;
      arg2_ = value;
    }

   private:
    TraceTick* tick_;  // Null = inactive span.
    const char* name_;
    uint64_t start_us_ = 0;
    uint64_t cost_ = 1;
    const char* arg1_name_ = nullptr;
    int64_t arg1_ = 0;
    const char* arg2_name_ = nullptr;
    int64_t arg2_ = 0;
  };

  Span MakeSpan(const char* name) { return Span(this, name); }

  void Instant(const char* name, const char* arg_name = nullptr,
               int64_t arg = 0);
  void CounterSample(const char* name, int64_t value);

 private:
  friend class Span;
  Tracer* tracer_;
  uint64_t ts_us_;
};

}  // namespace copart

#endif  // COPART_OBS_TRACER_H_
