// Fixed-capacity, lock-free event ring for the tracing hot path.
//
// One TraceRing belongs to exactly one producer thread (the control loop or
// a sweep worker) and one consumer (the Tracer draining it at epoch
// boundaries). Push() is wait-free and allocation-free: the slot array is
// sized once at construction and events are PODs whose string fields point
// at static storage. When the ring is full the *new* event is dropped and
// counted — overwriting old events would silently corrupt span nesting,
// and the exporter turns a non-zero drop count into an explicit overflow
// marker instead (tracer.h), so truncation is always visible in the trace.
//
// The SPSC discipline is the standard acquire/release two-cursor scheme:
// the producer owns head_, the consumer owns tail_, each reads the other's
// cursor with acquire ordering and publishes its own with release ordering.
#ifndef COPART_OBS_TRACE_RING_H_
#define COPART_OBS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace copart {

// One trace event, directly renderable as a Chrome trace-event object.
// String fields must point at static-storage strings (literals or interned
// names): events cross the ring by shallow copy and outlive their site.
struct TraceEvent {
  const char* name = nullptr;
  const char* category = "copart";
  // Chrome trace-event phase: 'X' = complete span, 'i' = instant,
  // 'C' = counter sample.
  char phase = 'X';
  // Timestamps are *virtual* microseconds (simulated time + a deterministic
  // intra-tick cursor), never wall clock — see DESIGN.md §8.
  uint64_t ts_us = 0;
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  // Per-ring publication index; total order tie-break for equal timestamps.
  uint64_t seq = 0;
  // Up to two integer args (rendered into the event's "args" object).
  const char* arg1_name = nullptr;
  int64_t arg1 = 0;
  const char* arg2_name = nullptr;
  int64_t arg2 = 0;
};

class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Producer side. Returns false (and counts the drop) when the ring is
  // full. Assigns the event's seq from the ring's publication counter.
  bool Push(TraceEvent event);

  // Consumer side: pops every currently-published event into `out`
  // (appending). Returns the number of events moved.
  size_t Drain(std::vector<TraceEvent>& out);

  // Events currently in the ring (racy by nature; exact when quiesced).
  size_t size() const;
  size_t capacity() const { return slots_.size(); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  // Total events ever accepted (published) by this ring.
  uint64_t published() const { return seq_; }

 private:
  std::vector<TraceEvent> slots_;
  // head_ = next slot the producer writes; tail_ = next slot the consumer
  // reads. Both are free-running; slot index = cursor % capacity.
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> tail_{0};
  std::atomic<uint64_t> dropped_{0};
  uint64_t seq_ = 0;  // Producer-owned publication counter.
};

}  // namespace copart

#endif  // COPART_OBS_TRACE_RING_H_
