#include "obs/trace_ring.h"

#include "common/logging.h"

namespace copart {

TraceRing::TraceRing(size_t capacity) : slots_(capacity) {
  CHECK_GE(capacity, 1u);
}

bool TraceRing::Push(TraceEvent event) {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  event.seq = seq_++;
  slots_[head % slots_.size()] = event;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

size_t TraceRing::Drain(std::vector<TraceEvent>& out) {
  const uint64_t head = head_.load(std::memory_order_acquire);
  uint64_t tail = tail_.load(std::memory_order_relaxed);
  const size_t moved = static_cast<size_t>(head - tail);
  out.reserve(out.size() + moved);
  for (; tail != head; ++tail) {
    out.push_back(slots_[tail % slots_.size()]);
  }
  tail_.store(tail, std::memory_order_release);
  return moved;
}

size_t TraceRing::size() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t tail = tail_.load(std::memory_order_acquire);
  return static_cast<size_t>(head - tail);
}

}  // namespace copart
