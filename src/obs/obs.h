// The observability bundle wired through the controller and harnesses: a
// metrics registry, an event tracer, and a controller decision audit log
// behind one pointer.
//
// Gating — two layers, both zero-cost when off:
//   Runtime:      every instrumented site holds an `Observability*` that is
//                 null by default. The ObsTracer/ObsAudit/ObsMetrics
//                 accessors below fold the null check into one compare.
//   Compile time: configuring with -DCOPART_DISABLE_OBS=ON defines
//                 COPART_OBS_DISABLED, which turns the accessors into
//                 constant-null inlines — the compiler deletes every
//                 instrumented site outright. The library still builds (so
//                 tests that construct Observability directly keep
//                 compiling); only the *wiring* disappears.
//
// Instrumented sites must therefore always route through the accessors:
//
//   if (Tracer* tracer = ObsTracer(obs)) { ... }
//   if (AuditLog* audit = ObsAudit(obs)) { audit->Append(record); }
//
// never through `obs->tracer` directly.
#ifndef COPART_OBS_OBS_H_
#define COPART_OBS_OBS_H_

#include <string>

#include "common/fault_injector.h"
#include "common/parallel.h"
#include "common/status.h"
#include "obs/audit_log.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"

namespace copart {

struct ObservabilityOptions {
  TracerOptions tracer;
  size_t audit_capacity = 1 << 16;
};

class Observability {
 public:
  explicit Observability(const ObservabilityOptions& options = {});

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry metrics;
  Tracer tracer;
  AuditLog audit;

  // Gates the tracer and audit log together (metrics updates are driven by
  // explicit Export* calls, so they need no gate).
  void set_enabled(bool enabled);

  // Writes <prefix>.trace.json (Chrome trace events), <prefix>.audit.json
  // (decision records), and <prefix>.metrics.json (full dump). Returns the
  // first failure.
  Status ExportAll(const std::string& prefix);
};

#if defined(COPART_OBS_DISABLED)

inline constexpr Tracer* ObsTracer(Observability*) { return nullptr; }
inline constexpr AuditLog* ObsAudit(Observability*) { return nullptr; }
inline constexpr MetricsRegistry* ObsMetrics(Observability*) {
  return nullptr;
}

#else

inline Tracer* ObsTracer(Observability* obs) {
  return obs != nullptr ? &obs->tracer : nullptr;
}
inline AuditLog* ObsAudit(Observability* obs) {
  return obs != nullptr ? &obs->audit : nullptr;
}
inline MetricsRegistry* ObsMetrics(Observability* obs) {
  return obs != nullptr ? &obs->metrics : nullptr;
}

#endif  // COPART_OBS_DISABLED

// Absorbs the fault injector's per-point hit counts into the registry as
//   copart.fault.<point>.queries / copart.fault.<point>.failures
// counters plus the cross-point totals. Fault schedules are seed-derived,
// so these are deterministic.
void ExportFaultInjectorMetrics(const FaultInjector& injector,
                                MetricsRegistry* metrics);

// Absorbs one sweep's stats under `prefix` (e.g. "copart.sweep.heatmap"):
// cells as a deterministic counter; threads, wall/cpu seconds, and
// utilization as nondeterministic gauges (they measure the host).
void ExportSweepStatsMetrics(const SweepStats& stats, const std::string& prefix,
                             MetricsRegistry* metrics);

}  // namespace copart

#endif  // COPART_OBS_OBS_H_
