#include "obs/audit_log.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace copart {
namespace {

std::string FormatTime(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendEscaped(std::ostringstream& out, const char* s) {
  if (s == nullptr) {
    return;
  }
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out << buffer;
    } else {
      out << c;
    }
  }
}

void AppendRecord(std::ostringstream& out, const AuditRecord& r) {
  out << "{\"kind\": \"" << AuditKindName(r.kind) << "\", \"epoch\": "
      << r.epoch << ", \"time_sec\": " << FormatTime(r.time_sec)
      << ", \"phase\": \"";
  AppendEscaped(out, r.phase);
  out << "\", \"trigger\": \"";
  AppendEscaped(out, r.trigger);
  out << "\", \"app_index\": " << r.app_index << ", \"app_id\": " << r.app_id
      << ", \"clos\": " << r.clos << ", \"class\": \"";
  AppendEscaped(out, r.llc_class);
  out << "\", \"old_mask\": \"0x";
  char mask[32];
  std::snprintf(mask, sizeof(mask), "%llx",
                static_cast<unsigned long long>(r.old_mask));
  out << mask << "\", \"new_mask\": \"0x";
  std::snprintf(mask, sizeof(mask), "%llx",
                static_cast<unsigned long long>(r.new_mask));
  out << mask << "\", \"old_mba\": " << r.old_mba
      << ", \"new_mba\": " << r.new_mba
      << ", \"rollback\": " << (r.rollback ? "true" : "false")
      << ", \"degraded\": " << (r.degraded ? "true" : "false")
      << ", \"quarantined\": " << (r.quarantined ? "true" : "false")
      << ", \"failure_streak\": " << r.failure_streak << ", \"detail\": \"";
  AppendEscaped(out, r.detail);
  out << "\"}";
}

}  // namespace

const char* AuditKindName(AuditKind kind) {
  switch (kind) {
    case AuditKind::kAllocation:
      return "allocation";
    case AuditKind::kActuationFailure:
      return "actuation_failure";
    case AuditKind::kPhaseTransition:
      return "phase_transition";
    case AuditKind::kQuarantineChange:
      return "quarantine_change";
    case AuditKind::kMigration:
      return "migration";
    case AuditKind::kNodeFault:
      return "node_fault";
    case AuditKind::kGovernorOutcome:
      return "governor_outcome";
  }
  return "unknown";
}

AuditLog::AuditLog(size_t capacity) : capacity_(capacity) {
  records_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

void AuditLog::Append(const AuditRecord& record) {
  if (!enabled_) {
    return;
  }
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(record);
}

std::vector<AuditRecord> AuditLog::Filter(AuditKind kind) const {
  std::vector<AuditRecord> matched;
  for (const AuditRecord& record : records_) {
    if (record.kind == kind) {
      matched.push_back(record);
    }
  }
  return matched;
}

std::string AuditLog::ToJson() const {
  std::ostringstream out;
  out << "[\n";
  const char* separator = "";
  for (const AuditRecord& record : records_) {
    out << separator;
    AppendRecord(out, record);
    separator = ",\n";
  }
  if (dropped_ > 0) {
    out << separator << "{\"audit_overflow\": " << dropped_ << "}";
  }
  out << "\n]\n";
  return out.str();
}

Status AuditLog::ExportJson(const std::string& path) const {
  const std::string json = ToJson();
  std::ofstream file(path, std::ios::out | std::ios::trunc);
  if (!file) {
    return UnavailableError("cannot open audit output path: " + path);
  }
  file << json;
  file.flush();
  if (!file) {
    return UnavailableError("failed writing audit output: " + path);
  }
  return Status::Ok();
}

void AuditLog::Clear() {
  records_.clear();
  dropped_ = 0;
}

}  // namespace copart
