// Fairness and performance metrics from the paper (§2.3).
//
//   Slowdown_i = IPS_{i,full} / IPS_{i,s_i}                    (Eq. 1)
//   Unfairness = sigma(slowdowns) / mean(slowdowns)            (Eq. 2)
//
// Lower unfairness is better; 0 means every consolidated app is slowed by
// exactly the same factor. Throughput is reported as the geometric mean of
// per-app IPS values normalized to a baseline (Fig. 17).
#ifndef COPART_METRICS_FAIRNESS_H_
#define COPART_METRICS_FAIRNESS_H_

#include <span>
#include <vector>

namespace copart {

// Eq. 1. Both inputs must be positive.
double Slowdown(double ips_full, double ips_actual);

// Eq. 2 over per-app slowdowns; 0 for fewer than two apps.
double Unfairness(std::span<const double> slowdowns);

// Convenience: unfairness directly from paired IPS vectors.
double UnfairnessFromIps(std::span<const double> ips_full,
                         std::span<const double> ips_actual);

// Geometric-mean throughput of per-app IPS (Fig. 17's metric).
double GeoMeanThroughput(std::span<const double> ips);

}  // namespace copart

#endif  // COPART_METRICS_FAIRNESS_H_
