#include "metrics/fairness.h"

#include "common/logging.h"
#include "common/stats.h"

namespace copart {

double Slowdown(double ips_full, double ips_actual) {
  CHECK_GT(ips_full, 0.0);
  CHECK_GT(ips_actual, 0.0);
  return ips_full / ips_actual;
}

double Unfairness(std::span<const double> slowdowns) {
  if (slowdowns.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(slowdowns);
  CHECK_GT(mean, 0.0);
  return StdDev(slowdowns) / mean;
}

double UnfairnessFromIps(std::span<const double> ips_full,
                         std::span<const double> ips_actual) {
  CHECK_EQ(ips_full.size(), ips_actual.size());
  std::vector<double> slowdowns;
  slowdowns.reserve(ips_full.size());
  for (size_t i = 0; i < ips_full.size(); ++i) {
    slowdowns.push_back(Slowdown(ips_full[i], ips_actual[i]));
  }
  return Unfairness(slowdowns);
}

double GeoMeanThroughput(std::span<const double> ips) { return GeoMean(ips); }

}  // namespace copart
