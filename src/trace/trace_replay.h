// Trace-replay workload adapter (DESIGN.md §15): ingests externally
// captured reuse-distance and arrival profiles — JSON documents with a
// checked schema — into the simulator's native types, so a workload
// measured on real hardware (e.g. an ATD-sampled MRC plus a request-rate
// trace) can be consolidated and governed like the built-in surrogates.
//
// Schema ("copart-trace-v1"; every unknown key is an error — a captured
// trace with a typo'd field must fail loudly, not silently default):
//
//   {
//     "schema": "copart-trace-v1",
//     "name": "captured_kv",            // required, non-empty
//     "short_name": "KV",               // optional (default: name)
//     "category": "latency_critical",   // llc_sensitive | bw_sensitive |
//                                       // both_sensitive | insensitive |
//                                       // latency_critical | batch
//     "reuse": {                        // required
//       "streaming_weight": 0.05,
//       "components": [ {"weight": 0.8, "working_set_bytes": 12582912} ]
//     },
//     "cpu": {                          // required
//       "accesses_per_instr": 0.008, "cpi_exec": 1.2,
//       "mem_latency_cycles": 200.0, "mlp": 2.0, "mba_kappa": 0.1,
//       "num_threads": 8                // optional (default 4)
//     },
//     "phases": [                       // optional
//       {"duration_sec": 15.0, "access_intensity_scale": 2.0,
//        "streaming_scale": 8.0, "cpi_exec_scale": 1.1}
//     ],
//     "serve": {                        // optional (LC workloads)
//       "instructions_per_request": 60000.0, "slo_p95_ms": 1.0,
//       "arrival": {                    // optional
//         "kind": "burst",              // poisson | diurnal | burst |
//                                       // flash_crowd
//         "base_rate_rps": 75000.0,
//         "burst_phases": [ {"duration_sec": 5.0, "rate_multiplier": 2.4} ],
//         "diurnal_period_sec": 60.0, "diurnal_amplitude": 0.5,
//         "flash_start_sec": 40.0, "flash_duration_sec": 20.0,
//         "flash_multiplier": 4.0
//       }
//     }
//   }
//
// The parser is a self-contained recursive-descent JSON reader (the repo
// deliberately has no third-party JSON dependency); structural errors and
// schema violations come back as InvalidArgumentError with a path like
// "reuse.components[0].weight".
#ifndef COPART_TRACE_TRACE_REPLAY_H_
#define COPART_TRACE_TRACE_REPLAY_H_

#include <string>

#include "common/status.h"
#include "serve/arrival.h"
#include "workload/workload.h"

namespace copart {

// A replayable captured workload: the descriptor for the machine plus an
// optional arrival trace for the serve harness.
struct TraceReplay {
  WorkloadDescriptor workload;
  // True when the document carried serve.arrival; `arrival` is then the
  // configured generator input (otherwise default-constructed).
  bool has_arrival = false;
  ArrivalConfig arrival;
};

// Parses a schema-checked JSON document. InvalidArgumentError on malformed
// JSON, schema violations, unknown keys, or out-of-range values.
Result<TraceReplay> ParseTraceReplay(const std::string& json);

// Reads `path` and parses it. NotFoundError when unreadable.
Result<TraceReplay> LoadTraceReplayFile(const std::string& path);

}  // namespace copart

#endif  // COPART_TRACE_TRACE_REPLAY_H_
