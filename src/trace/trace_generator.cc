#include "trace/trace_generator.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace copart {

UniformWorkingSetGenerator::UniformWorkingSetGenerator(
    uint64_t base_address, uint64_t working_set_bytes, uint32_t line_bytes,
    Rng rng)
    : base_address_(base_address),
      num_lines_(std::max<uint64_t>(1, working_set_bytes / line_bytes)),
      line_bytes_(line_bytes),
      rng_(rng) {
  CHECK_GT(line_bytes, 0u);
}

uint64_t UniformWorkingSetGenerator::Next() {
  return base_address_ + rng_.NextUint64(num_lines_) * line_bytes_;
}

StreamingGenerator::StreamingGenerator(uint64_t base_address,
                                       uint32_t line_bytes)
    : next_address_(base_address), line_bytes_(line_bytes) {
  CHECK_GT(line_bytes, 0u);
}

uint64_t StreamingGenerator::Next() {
  const uint64_t address = next_address_;
  next_address_ += line_bytes_;
  return address;
}

MixtureTraceGenerator::MixtureTraceGenerator(const ReuseProfile& profile,
                                             uint32_t line_bytes, Rng rng,
                                             uint64_t address_space_base)
    : rng_(rng) {
  // Lay component ranges out disjointly, leaving a gap after each so the
  // streaming pointer (placed last, far away) never collides.
  uint64_t next_base = address_space_base;
  double cumulative = 0.0;

  for (const ReuseComponent& component : profile.components()) {
    cumulative += component.weight;
    sources_.push_back(
        {cumulative, std::make_unique<UniformWorkingSetGenerator>(
                         next_base, component.working_set_bytes, line_bytes,
                         rng_.Fork())});
    next_base += component.working_set_bytes + GiB(1);
  }
  if (profile.streaming_weight() > 0.0) {
    cumulative += profile.streaming_weight();
    sources_.push_back({cumulative, std::make_unique<StreamingGenerator>(
                                        next_base + GiB(64), line_bytes)});
  }
  // Residual weight: a single resident line that always hits once warm.
  if (cumulative < 1.0 - 1e-12) {
    sources_.push_back(
        {1.0, std::make_unique<UniformWorkingSetGenerator>(
                  next_base + GiB(256), line_bytes, line_bytes, rng_.Fork())});
  }
  CHECK(!sources_.empty()) << "reuse profile has zero total weight";
}

uint64_t MixtureTraceGenerator::Next() {
  const double draw = rng_.NextDouble();
  for (WeightedSource& source : sources_) {
    if (draw < source.cumulative_weight) {
      return source.generator->Next();
    }
  }
  return sources_.back().generator->Next();
}

}  // namespace copart
