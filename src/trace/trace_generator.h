// Synthetic address-trace generators.
//
// These produce LLC-level access streams (i.e. post-L2-filter) that realize a
// ReuseProfile: uniform-random draws inside each working-set component and a
// monotonically advancing streaming pointer. They drive the trace-driven
// WayPartitionedCache in tests and the MRC-validation benchmark, which
// cross-checks the analytic miss model against actual LRU behaviour.
#ifndef COPART_TRACE_TRACE_GENERATOR_H_
#define COPART_TRACE_TRACE_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/miss_ratio_curve.h"
#include "common/rng.h"

namespace copart {

// Interface: one byte address per call.
class TraceGenerator {
 public:
  virtual ~TraceGenerator() = default;
  virtual uint64_t Next() = 0;
};

// Uniform-random line-aligned accesses over a fixed working set.
class UniformWorkingSetGenerator : public TraceGenerator {
 public:
  UniformWorkingSetGenerator(uint64_t base_address, uint64_t working_set_bytes,
                             uint32_t line_bytes, Rng rng);

  uint64_t Next() override;

 private:
  uint64_t base_address_;
  uint64_t num_lines_;
  uint32_t line_bytes_;
  Rng rng_;
};

// Sequential scan that never revisits a line within any realistic window
// (models STREAM and other pure-bandwidth scans).
class StreamingGenerator : public TraceGenerator {
 public:
  StreamingGenerator(uint64_t base_address, uint32_t line_bytes);

  uint64_t Next() override;

 private:
  uint64_t next_address_;
  uint32_t line_bytes_;
};

// Realizes a full ReuseProfile: each access picks a component (or the
// streaming pointer, or an always-hit "resident" line pool) with the
// profile's weights. Component address ranges are disjoint, and the whole
// layout starts at `address_space_base` — give every co-running generator
// a distinct base (e.g. app_index << 44) or their traces alias the same
// cache lines.
class MixtureTraceGenerator : public TraceGenerator {
 public:
  MixtureTraceGenerator(const ReuseProfile& profile, uint32_t line_bytes,
                        Rng rng, uint64_t address_space_base = 0);

  uint64_t Next() override;

 private:
  struct WeightedSource {
    double cumulative_weight;
    std::unique_ptr<TraceGenerator> generator;
  };

  std::vector<WeightedSource> sources_;
  Rng rng_;
};

}  // namespace copart

#endif  // COPART_TRACE_TRACE_GENERATOR_H_
