#include "trace/trace_replay.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

namespace copart {
namespace {

// --- Minimal JSON value + recursive-descent parser ---
//
// Supports exactly what the schema needs: objects, arrays, numbers,
// strings, booleans, null. Object keys keep insertion order so error
// messages are stable.

struct JsonValue;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<JsonArray> array;
  std::shared_ptr<JsonObject> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return ParseNumber();
        }
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    value.object = std::make_shared<JsonObject>();
    SkipWhitespace();
    if (Consume('}')) {
      return value;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      Result<JsonValue> key = ParseString();
      if (!key.ok()) {
        return key;
      }
      for (const auto& [existing, unused] : *value.object) {
        if (existing == key->string) {
          return Error("duplicate key \"" + key->string + "\"");
        }
      }
      if (!Consume(':')) {
        return Error("expected ':' after key \"" + key->string + "\"");
      }
      Result<JsonValue> member = ParseValue();
      if (!member.ok()) {
        return member;
      }
      value.object->emplace_back(key->string, std::move(*member));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return value;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    value.array = std::make_shared<JsonArray>();
    SkipWhitespace();
    if (Consume(']')) {
      return value;
    }
    for (;;) {
      Result<JsonValue> element = ParseValue();
      if (!element.ok()) {
        return element;
      }
      value.array->push_back(std::move(*element));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return value;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // '"'
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return value;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) {
          return Error("unterminated escape");
        }
        const char escaped = text_[pos_ + 1];
        switch (escaped) {
          case '"':
          case '\\':
          case '/':
            value.string.push_back(escaped);
            break;
          case 'n':
            value.string.push_back('\n');
            break;
          case 't':
            value.string.push_back('\t');
            break;
          case 'r':
            value.string.push_back('\r');
            break;
          default:
            return Error(std::string("unsupported escape '\\") + escaped +
                         "'");
        }
        pos_ += 2;
        continue;
      }
      value.string.push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty() ||
        !std::isfinite(parsed)) {
      pos_ = start;
      return Error("malformed number \"" + token + "\"");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number = parsed;
    return value;
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      value.boolean = false;
      pos_ += 5;
      return value;
    }
    return Error("malformed literal");
  }

  Result<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      JsonValue value;
      return value;
    }
    return Error("malformed literal");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- Schema checking ---
//
// Every reader takes the JSON path of the node for error messages, and
// object readers reject unknown keys.

Status SchemaError(const std::string& path, const std::string& what) {
  return InvalidArgumentError("trace schema error at " + path + ": " + what);
}

Status CheckKnownKeys(const JsonValue& node, const std::string& path,
                      const std::vector<std::string>& known) {
  for (const auto& [key, unused] : *node.object) {
    bool found = false;
    for (const std::string& candidate : known) {
      if (key == candidate) {
        found = true;
        break;
      }
    }
    if (!found) {
      return SchemaError(path, "unknown key \"" + key + "\"");
    }
  }
  return Status::Ok();
}

const JsonValue* Find(const JsonValue& node, const std::string& key) {
  for (const auto& [candidate, value] : *node.object) {
    if (candidate == key) {
      return &value;
    }
  }
  return nullptr;
}

Result<double> ReadNumber(const JsonValue& node, const std::string& path,
                          const std::string& key, bool required,
                          double fallback) {
  const JsonValue* value = Find(node, key);
  if (value == nullptr) {
    if (required) {
      return SchemaError(path, "missing required key \"" + key + "\"");
    }
    return fallback;
  }
  if (value->kind != JsonValue::Kind::kNumber) {
    return SchemaError(path + "." + key, "expected a number");
  }
  return value->number;
}

Result<std::string> ReadString(const JsonValue& node, const std::string& path,
                               const std::string& key, bool required,
                               std::string fallback) {
  const JsonValue* value = Find(node, key);
  if (value == nullptr) {
    if (required) {
      return SchemaError(path, "missing required key \"" + key + "\"");
    }
    return fallback;
  }
  if (value->kind != JsonValue::Kind::kString) {
    return SchemaError(path + "." + key, "expected a string");
  }
  return value->string;
}

Result<WorkloadCategory> ParseCategory(const std::string& name,
                                       const std::string& path) {
  if (name == "llc_sensitive") return WorkloadCategory::kLlcSensitive;
  if (name == "bw_sensitive") return WorkloadCategory::kBwSensitive;
  if (name == "both_sensitive") return WorkloadCategory::kBothSensitive;
  if (name == "insensitive") return WorkloadCategory::kInsensitive;
  if (name == "latency_critical") return WorkloadCategory::kLatencyCritical;
  if (name == "batch") return WorkloadCategory::kBatch;
  return SchemaError(path, "unknown category \"" + name + "\"");
}

Result<ReuseProfile> ParseReuse(const JsonValue& node,
                                const std::string& path) {
  if (node.kind != JsonValue::Kind::kObject) {
    return SchemaError(path, "expected an object");
  }
  Status known = CheckKnownKeys(node, path, {"streaming_weight", "components"});
  if (!known.ok()) {
    return known;
  }
  Result<double> streaming =
      ReadNumber(node, path, "streaming_weight", /*required=*/false, 0.0);
  if (!streaming.ok()) {
    return streaming.status();
  }
  if (*streaming < 0.0 || *streaming > 1.0) {
    return SchemaError(path + ".streaming_weight", "must be in [0, 1]");
  }
  const JsonValue* components = Find(node, "components");
  if (components == nullptr) {
    return SchemaError(path, "missing required key \"components\"");
  }
  if (components->kind != JsonValue::Kind::kArray) {
    return SchemaError(path + ".components", "expected an array");
  }
  std::vector<ReuseComponent> parsed;
  double weight_sum = *streaming;
  for (size_t i = 0; i < components->array->size(); ++i) {
    const std::string element_path =
        path + ".components[" + std::to_string(i) + "]";
    const JsonValue& element = (*components->array)[i];
    if (element.kind != JsonValue::Kind::kObject) {
      return SchemaError(element_path, "expected an object");
    }
    Status element_known = CheckKnownKeys(element, element_path,
                                          {"weight", "working_set_bytes"});
    if (!element_known.ok()) {
      return element_known;
    }
    Result<double> weight =
        ReadNumber(element, element_path, "weight", /*required=*/true, 0.0);
    if (!weight.ok()) {
      return weight.status();
    }
    Result<double> working_set = ReadNumber(element, element_path,
                                            "working_set_bytes",
                                            /*required=*/true, 0.0);
    if (!working_set.ok()) {
      return working_set.status();
    }
    if (*weight <= 0.0 || *weight > 1.0) {
      return SchemaError(element_path + ".weight", "must be in (0, 1]");
    }
    if (*working_set < 1.0) {
      return SchemaError(element_path + ".working_set_bytes",
                         "must be >= 1");
    }
    weight_sum += *weight;
    parsed.push_back(ReuseComponent{
        .weight = *weight,
        .working_set_bytes = static_cast<uint64_t>(*working_set)});
  }
  if (weight_sum > 1.0 + 1e-9) {
    return SchemaError(path,
                       "component weights + streaming_weight exceed 1");
  }
  return ReuseProfile(std::move(parsed), *streaming);
}

Status ParseCpu(const JsonValue& node, const std::string& path,
                WorkloadDescriptor& workload) {
  if (node.kind != JsonValue::Kind::kObject) {
    return SchemaError(path, "expected an object");
  }
  RETURN_IF_ERROR(CheckKnownKeys(
      node, path,
      {"accesses_per_instr", "cpi_exec", "mem_latency_cycles", "mlp",
       "mba_kappa", "num_threads"}));
  struct Field {
    const char* key;
    double* target;
    bool required;
    double min;
  };
  const Field fields[] = {
      {"accesses_per_instr", &workload.accesses_per_instr, true, 0.0},
      {"cpi_exec", &workload.cpi_exec, true, 1e-9},
      {"mem_latency_cycles", &workload.mem_latency_cycles, false, 1e-9},
      {"mlp", &workload.mlp, false, 1e-9},
      {"mba_kappa", &workload.mba_kappa, false, 0.0},
  };
  for (const Field& field : fields) {
    Result<double> value =
        ReadNumber(node, path, field.key, field.required, *field.target);
    if (!value.ok()) {
      return value.status();
    }
    if (*value < field.min) {
      return SchemaError(path + "." + field.key, "out of range");
    }
    *field.target = *value;
  }
  Result<double> threads = ReadNumber(node, path, "num_threads",
                                      /*required=*/false,
                                      workload.num_threads);
  if (!threads.ok()) {
    return threads.status();
  }
  if (*threads < 1.0 || *threads != std::floor(*threads)) {
    return SchemaError(path + ".num_threads", "must be a positive integer");
  }
  workload.num_threads = static_cast<uint32_t>(*threads);
  return Status::Ok();
}

Status ParsePhases(const JsonValue& node, const std::string& path,
                   WorkloadDescriptor& workload) {
  if (node.kind != JsonValue::Kind::kArray) {
    return SchemaError(path, "expected an array");
  }
  for (size_t i = 0; i < node.array->size(); ++i) {
    const std::string element_path = path + "[" + std::to_string(i) + "]";
    const JsonValue& element = (*node.array)[i];
    if (element.kind != JsonValue::Kind::kObject) {
      return SchemaError(element_path, "expected an object");
    }
    RETURN_IF_ERROR(CheckKnownKeys(element, element_path,
                                   {"duration_sec", "access_intensity_scale",
                                    "streaming_scale", "cpi_exec_scale"}));
    WorkloadPhase phase;
    Result<double> duration = ReadNumber(element, element_path,
                                         "duration_sec", /*required=*/true,
                                         0.0);
    if (!duration.ok()) {
      return duration.status();
    }
    if (*duration <= 0.0) {
      return SchemaError(element_path + ".duration_sec", "must be > 0");
    }
    phase.duration_sec = *duration;
    struct Scale {
      const char* key;
      double* target;
    };
    const Scale scales[] = {
        {"access_intensity_scale", &phase.access_intensity_scale},
        {"streaming_scale", &phase.streaming_scale},
        {"cpi_exec_scale", &phase.cpi_exec_scale},
    };
    for (const Scale& scale : scales) {
      Result<double> value = ReadNumber(element, element_path, scale.key,
                                        /*required=*/false, *scale.target);
      if (!value.ok()) {
        return value.status();
      }
      if (*value <= 0.0) {
        return SchemaError(element_path + "." + scale.key, "must be > 0");
      }
      *scale.target = *value;
    }
    workload.phases.push_back(phase);
  }
  return Status::Ok();
}

Status ParseArrival(const JsonValue& node, const std::string& path,
                    ArrivalConfig& arrival) {
  if (node.kind != JsonValue::Kind::kObject) {
    return SchemaError(path, "expected an object");
  }
  RETURN_IF_ERROR(CheckKnownKeys(
      node, path,
      {"kind", "base_rate_rps", "burst_phases", "diurnal_period_sec",
       "diurnal_amplitude", "flash_start_sec", "flash_duration_sec",
       "flash_multiplier"}));
  Result<std::string> kind =
      ReadString(node, path, "kind", /*required=*/true, "");
  if (!kind.ok()) {
    return kind.status();
  }
  if (*kind == "poisson") {
    arrival.kind = ArrivalKind::kPoisson;
  } else if (*kind == "diurnal") {
    arrival.kind = ArrivalKind::kDiurnal;
  } else if (*kind == "burst") {
    arrival.kind = ArrivalKind::kBurst;
  } else if (*kind == "flash_crowd") {
    arrival.kind = ArrivalKind::kFlashCrowd;
  } else {
    return SchemaError(path + ".kind", "unknown kind \"" + *kind + "\"");
  }
  struct Field {
    const char* key;
    double* target;
    double min;
  };
  const Field fields[] = {
      {"base_rate_rps", &arrival.base_rate_rps, 1e-9},
      {"diurnal_period_sec", &arrival.diurnal_period_sec, 1e-9},
      {"diurnal_amplitude", &arrival.diurnal_amplitude, 0.0},
      {"flash_start_sec", &arrival.flash_start_sec, 0.0},
      {"flash_duration_sec", &arrival.flash_duration_sec, 1e-9},
      {"flash_multiplier", &arrival.flash_multiplier, 0.0},
  };
  for (const Field& field : fields) {
    Result<double> value =
        ReadNumber(node, path, field.key,
                   /*required=*/field.target == &arrival.base_rate_rps,
                   *field.target);
    if (!value.ok()) {
      return value.status();
    }
    if (*value < field.min) {
      return SchemaError(path + "." + field.key, "out of range");
    }
    *field.target = *value;
  }
  if (arrival.diurnal_amplitude > 1.0) {
    return SchemaError(path + ".diurnal_amplitude", "must be in [0, 1]");
  }
  if (const JsonValue* phases = Find(node, "burst_phases")) {
    if (phases->kind != JsonValue::Kind::kArray) {
      return SchemaError(path + ".burst_phases", "expected an array");
    }
    for (size_t i = 0; i < phases->array->size(); ++i) {
      const std::string element_path =
          path + ".burst_phases[" + std::to_string(i) + "]";
      const JsonValue& element = (*phases->array)[i];
      if (element.kind != JsonValue::Kind::kObject) {
        return SchemaError(element_path, "expected an object");
      }
      RETURN_IF_ERROR(CheckKnownKeys(element, element_path,
                                     {"duration_sec", "rate_multiplier"}));
      Result<double> duration = ReadNumber(element, element_path,
                                           "duration_sec",
                                           /*required=*/true, 0.0);
      if (!duration.ok()) {
        return duration.status();
      }
      Result<double> multiplier = ReadNumber(element, element_path,
                                             "rate_multiplier",
                                             /*required=*/true, 1.0);
      if (!multiplier.ok()) {
        return multiplier.status();
      }
      if (*duration <= 0.0) {
        return SchemaError(element_path + ".duration_sec", "must be > 0");
      }
      if (*multiplier < 0.0) {
        return SchemaError(element_path + ".rate_multiplier",
                           "must be >= 0");
      }
      arrival.burst_phases.push_back(
          BurstPhase{.duration_sec = *duration,
                     .rate_multiplier = *multiplier});
    }
  }
  return Status::Ok();
}

Status ParseServe(const JsonValue& node, const std::string& path,
                  TraceReplay& replay) {
  if (node.kind != JsonValue::Kind::kObject) {
    return SchemaError(path, "expected an object");
  }
  RETURN_IF_ERROR(CheckKnownKeys(
      node, path, {"instructions_per_request", "slo_p95_ms", "arrival"}));
  Result<double> ipr = ReadNumber(node, path, "instructions_per_request",
                                  /*required=*/true, 0.0);
  if (!ipr.ok()) {
    return ipr.status();
  }
  Result<double> slo =
      ReadNumber(node, path, "slo_p95_ms", /*required=*/true, 0.0);
  if (!slo.ok()) {
    return slo.status();
  }
  if (*ipr <= 0.0) {
    return SchemaError(path + ".instructions_per_request", "must be > 0");
  }
  if (*slo <= 0.0) {
    return SchemaError(path + ".slo_p95_ms", "must be > 0");
  }
  replay.workload.instructions_per_request = *ipr;
  replay.workload.slo_p95_ms = *slo;
  if (const JsonValue* arrival = Find(node, "arrival")) {
    RETURN_IF_ERROR(ParseArrival(*arrival, path + ".arrival",
                                 replay.arrival));
    replay.has_arrival = true;
  }
  return Status::Ok();
}

}  // namespace

Result<TraceReplay> ParseTraceReplay(const std::string& json) {
  Result<JsonValue> document = JsonParser(json).Parse();
  if (!document.ok()) {
    return document.status();
  }
  if (document->kind != JsonValue::Kind::kObject) {
    return SchemaError("$", "top level must be an object");
  }
  RETURN_IF_ERROR(CheckKnownKeys(*document, "$",
                                 {"schema", "name", "short_name", "category",
                                  "reuse", "cpu", "phases", "serve"}));
  Result<std::string> schema =
      ReadString(*document, "$", "schema", /*required=*/true, "");
  if (!schema.ok()) {
    return schema.status();
  }
  if (*schema != "copart-trace-v1") {
    return SchemaError("$.schema",
                       "unsupported schema \"" + *schema + "\"");
  }
  TraceReplay replay;
  Result<std::string> name =
      ReadString(*document, "$", "name", /*required=*/true, "");
  if (!name.ok()) {
    return name.status();
  }
  if (name->empty()) {
    return SchemaError("$.name", "must be non-empty");
  }
  replay.workload.name = *name;
  Result<std::string> short_name = ReadString(*document, "$", "short_name",
                                              /*required=*/false, *name);
  if (!short_name.ok()) {
    return short_name.status();
  }
  replay.workload.short_name = *short_name;
  Result<std::string> category = ReadString(*document, "$", "category",
                                            /*required=*/false,
                                            "insensitive");
  if (!category.ok()) {
    return category.status();
  }
  Result<WorkloadCategory> parsed_category =
      ParseCategory(*category, "$.category");
  if (!parsed_category.ok()) {
    return parsed_category.status();
  }
  replay.workload.category = *parsed_category;

  const JsonValue* reuse = Find(*document, "reuse");
  if (reuse == nullptr) {
    return SchemaError("$", "missing required key \"reuse\"");
  }
  Result<ReuseProfile> profile = ParseReuse(*reuse, "$.reuse");
  if (!profile.ok()) {
    return profile.status();
  }
  replay.workload.reuse_profile = *profile;

  const JsonValue* cpu = Find(*document, "cpu");
  if (cpu == nullptr) {
    return SchemaError("$", "missing required key \"cpu\"");
  }
  RETURN_IF_ERROR(ParseCpu(*cpu, "$.cpu", replay.workload));

  if (const JsonValue* phases = Find(*document, "phases")) {
    RETURN_IF_ERROR(ParsePhases(*phases, "$.phases", replay.workload));
  }
  if (const JsonValue* serve = Find(*document, "serve")) {
    RETURN_IF_ERROR(ParseServe(*serve, "$.serve", replay));
  }
  if (replay.workload.category == WorkloadCategory::kLatencyCritical &&
      replay.workload.instructions_per_request <= 0.0) {
    return SchemaError(
        "$", "latency_critical workloads require a \"serve\" section");
  }
  return replay;
}

Result<TraceReplay> LoadTraceReplayFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot read trace file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTraceReplay(buffer.str());
}

}  // namespace copart
